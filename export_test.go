package haystack

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testWindowResult() *WindowResult {
	start := time.Date(2019, time.November, 15, 0, 0, 0, 0, time.UTC)
	return &WindowResult{
		Seq:   4,
		Start: start,
		End:   start.Add(time.Hour),
		Detections: []Detection{
			{Subscriber: 0x0123456789abcdef, Rule: "Alexa Enabled", Level: "Pl.", First: start.Add(9 * time.Minute).Truncate(time.Hour)},
			{Subscriber: 0xfedcba9876543210, Rule: "Meross Dooropener", Level: "Man.", First: start},
		},
		RuleCounts:          map[string]int{"Alexa Enabled": 1, "Meross Dooropener": 1},
		Subscribers:         2,
		DetectedSubscribers: 2,
		Records:             7,
		RecordsIPv4:         6,
		RecordsIPv6:         1,
	}
}

// TestDetectionJSONSubscriberIsHexString: Detection, DetectionEvent,
// and therefore WindowResult marshal the subscriber as the 16-hex-
// digit hash string — a raw uint64 above 2^53 silently corrupts in
// float64-based JSON consumers.
func TestDetectionJSONSubscriberIsHexString(t *testing.T) {
	res := testWindowResult()
	body, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Seq        uint64 `json:"seq"`
		Detections []struct {
			Subscriber string `json:"subscriber"`
			Rule       string `json:"rule"`
		} `json:"detections"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("WindowResult JSON does not round-trip: %v\n%s", err, body)
	}
	if doc.Seq != 4 || len(doc.Detections) != 2 {
		t.Fatalf("marshalled window = %s", body)
	}
	if doc.Detections[0].Subscriber != "0123456789abcdef" {
		t.Fatalf("detection subscriber = %q, want hex hash", doc.Detections[0].Subscriber)
	}

	ev := DetectionEvent{Subscriber: 0xfedcba9876543210, Rule: "r", Level: "Man.", Window: 7}
	body, err = json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var evDoc struct {
		Subscriber string `json:"subscriber"`
		Window     uint64 `json:"window"`
	}
	if err := json.Unmarshal(body, &evDoc); err != nil {
		t.Fatal(err)
	}
	if evDoc.Subscriber != "fedcba9876543210" || evDoc.Window != 7 {
		t.Fatalf("marshalled event = %s", body)
	}

	// The library's own JSON round-trips through its own types.
	var ev2 DetectionEvent
	if err := json.Unmarshal(body, &ev2); err != nil {
		t.Fatalf("event does not round-trip: %v", err)
	}
	if ev2 != ev {
		t.Fatalf("round-tripped event = %+v, want %+v", ev2, ev)
	}
	var det2 []Detection
	detBody, err := json.Marshal(res.Detections)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(detBody, &det2); err != nil {
		t.Fatalf("detections do not round-trip: %v", err)
	}
	if !reflect.DeepEqual(det2, res.Detections) {
		t.Fatalf("round-tripped detections diverge: %+v", det2)
	}
}

func TestWriteWindowJSONL(t *testing.T) {
	res := testWindowResult()
	var buf bytes.Buffer
	if err := WriteWindowJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 2 rows + trailer: %q", len(lines), buf.String())
	}
	var row struct {
		Window      uint64 `json:"window"`
		WindowStart string `json:"window_start"`
		Subscriber  string `json:"subscriber"`
		Rule        string `json:"rule"`
		Level       string `json:"level"`
		First       string `json:"first"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatal(err)
	}
	if row.Window != 4 || row.Rule != "Alexa Enabled" || row.Level != "Pl." {
		t.Fatalf("row = %+v", row)
	}
	// §2.1: the subscriber appears only as its hash.
	if row.Subscriber != "0123456789abcdef" {
		t.Fatalf("subscriber = %q, want the 16-hex-digit hash", row.Subscriber)
	}
	if row.WindowStart != "2019-11-15T00:00:00Z" {
		t.Fatalf("window_start = %q", row.WindowStart)
	}
	if _, err := time.Parse(time.RFC3339, row.First); err != nil {
		t.Fatalf("first %q not RFC3339: %v", row.First, err)
	}

	// The export verifies against its own trailer.
	if rows, err := VerifyWindowJSONL(bytes.NewReader(buf.Bytes())); err != nil || rows != 2 {
		t.Fatalf("VerifyWindowJSONL = %d, %v; want 2, nil", rows, err)
	}

	// An empty window writes only the trailer, and it verifies too.
	buf.Reset()
	if err := WriteWindowJSONL(&buf, &WindowResult{Seq: 9}); err != nil {
		t.Fatal(err)
	}
	emptyLines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(emptyLines) != 1 {
		t.Fatalf("empty window wrote %q, want just the trailer", buf.String())
	}
	var tr struct {
		Trailer uint64 `json:"haystack_trailer"`
		Window  uint64 `json:"window"`
		Rows    uint64 `json:"rows"`
	}
	if err := json.Unmarshal([]byte(emptyLines[0]), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Trailer != 1 || tr.Window != 9 || tr.Rows != 0 {
		t.Fatalf("empty-window trailer = %+v", tr)
	}
	if rows, err := VerifyWindowJSONL(bytes.NewReader(buf.Bytes())); err != nil || rows != 0 {
		t.Fatalf("VerifyWindowJSONL(empty) = %d, %v; want 0, nil", rows, err)
	}
}

// TestVerifyWindowJSONLDetectsTruncation: the trailer's whole reason
// to exist — any prefix of a JSONL export parses as valid JSONL, so
// only the trailer can tell a backfill reader the file is short.
func TestVerifyWindowJSONLDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWindowJSONL(&buf, testWindowResult()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := VerifyWindowJSONL(bytes.NewReader(full)); err != nil {
		t.Fatal(err)
	}

	// Cut the file at every byte boundary: no truncation may verify.
	for cut := 0; cut < len(full); cut++ {
		if _, err := VerifyWindowJSONL(bytes.NewReader(full[:cut])); !errors.Is(err, ErrExportTruncated) {
			t.Fatalf("truncation at byte %d/%d verified: %v", cut, len(full), err)
		}
	}

	// A flipped body bit breaks the CRC.
	corrupt := append([]byte(nil), full...)
	corrupt[2] ^= 0x40
	if _, err := VerifyWindowJSONL(bytes.NewReader(corrupt)); !errors.Is(err, ErrExportTruncated) {
		t.Fatalf("bit flip verified: %v", err)
	}

	// A whole row deleted (trailer intact) breaks the row count or CRC.
	firstNL := bytes.IndexByte(full, '\n')
	if _, err := VerifyWindowJSONL(bytes.NewReader(full[firstNL+1:])); !errors.Is(err, ErrExportTruncated) {
		t.Fatalf("dropped row verified: %v", err)
	}
}

func TestWriteWindowCSV(t *testing.T) {
	res := testWindowResult()
	var buf bytes.Buffer
	if err := WriteWindowCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("CSV has %d rows, want header + 2", len(rows))
	}
	wantHeader := []string{"window", "window_start", "window_end", "subscriber", "rule", "level", "first"}
	for i, h := range wantHeader {
		if rows[0][i] != h {
			t.Fatalf("header = %v", rows[0])
		}
	}
	if rows[1][0] != "4" || rows[1][3] != "0123456789abcdef" || rows[1][4] != "Alexa Enabled" {
		t.Fatalf("first data row = %v", rows[1])
	}
	if rows[2][4] != "Meross Dooropener" || rows[2][5] != "Man." {
		t.Fatalf("second data row = %v", rows[2])
	}
}

func TestExportDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "windows")
	exp, err := NewExportDir(dir, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	res := testWindowResult()
	path, err := exp.Export(res)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "window-000000000004.jsonl" {
		t.Fatalf("export path = %q", path)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(body), "\n"); n != 3 {
		t.Fatalf("exported %d lines, want 2 rows + trailer", n)
	}
	if rows, err := VerifyWindowJSONL(bytes.NewReader(body)); err != nil || rows != 2 {
		t.Fatalf("exported file fails verification: %d, %v", rows, err)
	}
	// No temp-file debris after a clean export.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("export dir holds %d entries, want 1", len(entries))
	}

	csvExp, err := NewExportDir(dir, "csv")
	if err != nil {
		t.Fatal(err)
	}
	res.Seq = 5
	path, err = csvExp.Export(res)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "window-000000000005.csv" {
		t.Fatalf("csv export path = %q", path)
	}

	// The summary format goes through the same atomic tmp→rename path.
	sumExp, err := NewExportDir(dir, "summary")
	if err != nil {
		t.Fatal(err)
	}
	res.Seq = 6
	path, err = sumExp.Export(res)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "window-000000000006.summary" {
		t.Fatalf("summary export path = %q", path)
	}
	body, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteWindowSummary(&want, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("summary export = %q, want %q", body, want.Bytes())
	}
	if strings.Contains(strings.Join(dirNames(t, dir), " "), ".tmp") {
		t.Fatal("temp-file debris left after summary export")
	}

	if _, err := NewExportDir(dir, "xml"); err == nil {
		t.Fatal("unknown export format accepted")
	}
}

// dirNames lists a directory's entry names, for debris checks.
func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names
}

// TestExportDirMigratesNarrowNames: opening an export directory left
// by an earlier release (6-digit padding) widens the old names, so
// lexicographic order stays chronological across the upgrade instead
// of every new window sorting before the old ones.
func TestExportDirMigratesNarrowNames(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"window-000123.jsonl", "window-99.csv", "window-000000000007.jsonl"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated file must survive untouched.
	if err := os.WriteFile(filepath.Join(dir, "README"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	exp, err := NewExportDir(dir, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"window-000000000123.jsonl", "window-000000000099.csv",
		"window-000000000007.jsonl", "README",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("after migration: %v", err)
		}
	}
	for _, gone := range []string{"window-000123.jsonl", "window-99.csv"} {
		if _, err := os.Stat(filepath.Join(dir, gone)); err == nil {
			t.Errorf("narrow name %s survived migration", gone)
		}
	}
	// New exports continue past the migrated sequence numbers in
	// order.
	res := testWindowResult()
	res.Seq = 124
	path, err := exp.Export(res)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "window-000000000124.jsonl" {
		t.Fatalf("post-migration export path = %q", path)
	}
}

// TestExportDirNamesStayLexicographic pins the file-name padding: the
// docs promise that a consumer tailing the directory can rely on
// lexicographic order being window order. Six-digit padding broke at
// window 1 000 000 (the wider name sorted *before* window 999999);
// twelve digits outlive any realistic deployment.
func TestExportDirNamesStayLexicographic(t *testing.T) {
	exp, err := NewExportDir(t.TempDir(), "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	res := testWindowResult()
	var prev string
	for _, seq := range []uint64{0, 9, 999_999, 1_000_000, 1_000_001, 123_456_789_012} {
		res.Seq = seq
		path, err := exp.Export(res)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(path)
		if len(name) != len("window-000000000000.jsonl") {
			t.Fatalf("window %d exported as %q: name width drifted", seq, name)
		}
		if prev != "" && !(prev < name) {
			t.Fatalf("window %d file %q sorts before predecessor %q", seq, name, prev)
		}
		prev = name
	}
}

// TestWriteWindowSummary pins the summary writer's exact bytes:
// RuleCounts is a map, so the per-rule lines must come out in sorted
// rule order every run — this is the invariant the deterministic
// analyzer proves statically, pinned here dynamically too.
func TestWriteWindowSummary(t *testing.T) {
	res := testWindowResult()
	res.RuleCounts = map[string]int{
		"Meross Dooropener": 1,
		"Alexa Enabled":     3,
		"IKEA Gateway":      2,
	}
	want := "window 4  2019-11-15T00:00:00Z → 2019-11-15T01:00:00Z  subscribers 2  detected 2\n" +
		"  Alexa Enabled          3\n" +
		"  IKEA Gateway           2\n" +
		"  Meross Dooropener      1\n"
	for run := 0; run < 3; run++ {
		var buf bytes.Buffer
		if err := WriteWindowSummary(&buf, res); err != nil {
			t.Fatal(err)
		}
		if got := buf.String(); got != want {
			t.Fatalf("run %d:\ngot:\n%q\nwant:\n%q", run, got, want)
		}
	}
}
