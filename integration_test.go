package haystack

// Integration tests exercising the full operational path: simulated
// wild-ISP traffic → NetFlow v9 wire messages → collector → detection
// engine, at a scale where the paper's headline claims must emerge.

import (
	"testing"

	"net/netip"
	"repro/internal/detect"
	"repro/internal/flow"
	"repro/internal/isp"
	"repro/internal/netflow"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// TestIntegrationWildDayOverWire runs one simulated day of a 5k-line
// ISP population, exports every sampled observation as NetFlow v9
// bytes, feeds the wire stream to a Detector, and checks that the
// detections match an engine fed directly (the wire encoding must be
// lossless for detection purposes).
func TestIntegrationWildDayOverWire(t *testing.T) {
	s := sharedSystem(t)

	cfg := isp.DefaultConfig()
	cfg.Lines = 5_000
	pop := isp.NewPopulation(simrand.New(5), s.Catalog(), cfg, s.lab.W.Window)

	wireDet := s.NewDetector(0.4)
	defer wireDet.Close()
	directEng := detect.New(s.lab.Dict, 0.4)

	exp := netflow.NewExporter(42)
	exp.TemplateEvery = 1

	day := s.lab.W.Window.Days()[0]
	window := simtime.Window{Start: day.FirstHour(), End: day.FirstHour() + 24}

	// The wire path keys subscribers by source address, so give each
	// line a stable address and key the direct engine identically.
	lineAddr := func(line int32) netip.Addr {
		return netip.AddrFrom4([4]byte{10, byte(line >> 16), byte(line >> 8), byte(line)})
	}

	var recs []flow.Record
	pop.SimulateWindow(window,
		func(d simtime.Day) isp.Resolver { return s.lab.W.ResolverOn(d) },
		func(line int32, _ detect.SubID, h simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
			src := lineAddr(line)
			recs = append(recs, flow.Record{
				Key: flow.Key{
					Src: src, Dst: ip,
					SrcPort: 40000, DstPort: port, Proto: flow.ProtoTCP,
				},
				Packets: pkts, Bytes: pkts * 600, Hour: h,
			})
			key, _, ok := subscriberKey(src)
			if !ok {
				t.Fatalf("line %d address %v unusable", line, src)
			}
			directEng.Observe(key, h, ip, port, pkts)
		})
	if len(recs) == 0 {
		t.Fatal("no sampled traffic in a day")
	}

	// NetFlow messages group records of one hour; the exporter derives
	// the header timestamp from the first record, so export per hour.
	byHour := map[simtime.Hour][]flow.Record{}
	for _, r := range recs {
		byHour[r.Hour] = append(byHour[r.Hour], r)
	}
	msgs := 0
	for _, hourRecs := range byHour {
		ms, err := exp.Export(hourRecs, 30)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if err := wireDet.FeedNetFlow(m); err != nil {
				t.Fatal(err)
			}
			msgs++
		}
	}

	wire := wireDet.Detections()
	if len(wire) == 0 {
		t.Fatalf("no detections from %d records / %d messages", len(recs), msgs)
	}

	// Wire-fed and directly-fed detections must agree exactly.
	direct := map[[2]string]bool{}
	n := 0
	directEng.EachDetected(func(sub detect.SubID, rule int, _ simtime.Hour) {
		direct[[2]string{formatSub(uint64(sub)), s.lab.Dict.Rules[rule].Name}] = true
		n++
	})
	if len(wire) != n {
		t.Fatalf("wire path found %d detections, direct path %d", len(wire), n)
	}
	for _, d := range wire {
		if !direct[[2]string{formatSub(d.Subscriber), d.Rule}] {
			t.Fatalf("wire detection %v missing from direct path", d)
		}
	}

	// Sanity: a day of data detects a meaningful share of the placed
	// Alexa population (the §6.2 result at small scale).
	alexaOwners := 0
	for _, p := range []string{"Echo Dot", "Echo Spot", "Echo Plus", "Fire TV", "Allure with Alexa"} {
		alexaOwners += pop.ProductCount(p)
	}
	alexaDetected := 0
	for _, d := range wire {
		if d.Rule == "Alexa Enabled" {
			alexaDetected++
		}
	}
	frac := float64(alexaDetected) / float64(max(alexaOwners, 1))
	if frac < 0.7 {
		t.Errorf("daily Alexa detection covered %.0f%% of %d owners; paper expects near-complete daily coverage",
			100*frac, alexaOwners)
	}
}

func formatSub(v uint64) string {
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// TestIntegrationDeterministicStats rebuilds the ground-truth captures
// with the same seed and checks key figure statistics are identical —
// the reproducibility guarantee the repository advertises.
func TestIntegrationDeterministicStats(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds a lab")
	}
	a := MustNew(DefaultConfig(33))
	b := MustNew(DefaultConfig(33))
	for _, id := range []string{"S41", "S42", "F5a", "F5d", "F6", "F10"} {
		ta, err := a.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := b.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range ta.Stats {
			if tb.Stats[k] != v {
				t.Errorf("%s stat %s: %v vs %v across identical seeds", id, k, v, tb.Stats[k])
			}
		}
	}
}
