package haystack

// Aggregation windows: Rotate cuts the detector's current window into
// an immutable WindowResult and resets detection state for the next
// one, the way the paper's §6 figures aggregate per hour and per day.
// WindowConfig drives Rotate on a period from Listen/ListenAndDetect;
// export.go writes WindowResults out in the §2.1-anonymized schema.

import (
	"time"
)

// WindowConfig configures periodic aggregation-window rotation for a
// listening deployment (ListenConfig.Window).
type WindowConfig struct {
	// Every is the rotation period — the paper's hourly and daily
	// views use time.Hour and 24 * time.Hour. Zero disables periodic
	// rotation; with OnRotate still set, the whole run is one window
	// delivered at Close.
	Every time.Duration
	// OnRotate receives every closed window, including the final
	// partial window when the server shuts down. It runs on the
	// rotator goroutine (or the closing goroutine for the final
	// window): a slow callback delays the next rotation, never
	// ingestion.
	OnRotate func(WindowResult)
}

// WindowResult is the atomic end-of-window cut Rotate returns: every
// detection of the closing window plus per-rule counts and the
// window's slice of the transport counters. After Rotate the detector
// starts the next window empty, with feeds and template caches
// intact.
//
// haystack:metrics-struct — every exported field must be filled by a
// haystack:metrics-export function (enforced by haystacklint).
type WindowResult struct {
	// Seq is the window's sequence number (0 for the detector's first
	// window); DetectionEvents carry it as Window.
	Seq uint64 `json:"seq"`
	// Start and End are the wall-clock bounds of the window: creation
	// or previous rotation to this rotation.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Detections lists every (subscriber, rule) detection of the
	// window, sorted by subscriber then rule name — the same order
	// Detector.Detections uses.
	Detections []Detection `json:"detections"`
	// RuleCounts maps rule name → detected subscribers, for every rule
	// that fired this window.
	RuleCounts map[string]int `json:"rule_counts,omitempty"`
	// Subscribers is how many subscribers had at least one dictionary
	// hit this window; DetectedSubscribers how many had at least one
	// fired rule.
	Subscribers         int `json:"subscribers"`
	DetectedSubscribers int `json:"detected_subscribers"`
	// Records is the number of decoded records delivered to the
	// pipeline during the window (RecordsIPv4 + RecordsIPv6);
	// SkippedRecords and EventsDropped are the window's deltas of the
	// corresponding DetectorStats counters.
	Records        uint64 `json:"records"`
	RecordsIPv4    uint64 `json:"records_ipv4"`
	RecordsIPv6    uint64 `json:"records_ipv6"`
	SkippedRecords uint64 `json:"skipped_records"`
	EventsDropped  uint64 `json:"events_dropped"`
}

// windowBaseline snapshots the cumulative counters at the last window
// cut, so Rotate can report per-window deltas.
type windowBaseline struct {
	v4, v6, skipped, evDropped uint64
}

// cutBaselineLocked advances the delta baseline and the window start.
// Caller holds rotateMu.
func (d *Detector) cutBaselineLocked(now time.Time) windowBaseline {
	prev := d.base
	d.base = windowBaseline{
		v4:        d.recordsV4.Load(),
		v6:        d.recordsV6.Load(),
		skipped:   d.skipped.Load(),
		evDropped: d.eventsDropped.Load(),
	}
	d.windowStart = now
	return prev
}

// Rotate atomically ends the current aggregation window: it
// synchronizes the pipeline, captures the window's detections,
// per-rule counts, and stats deltas, and resets detection state for
// the next window. Feeds and their template caches survive, as they
// would across windows in a deployment. Like Reset, an exact cut
// requires quiescent feeds — observations in flight may land on
// either side of the boundary. Rotations are serialized; each returns
// a distinct, consecutive Seq.
//
// haystack:metrics-export
func (d *Detector) Rotate() WindowResult {
	d.rotateMu.Lock()
	defer d.rotateMu.Unlock()
	snap, seq := d.pipe.Rotate()
	now := time.Now()
	dict := d.pipe.Dictionary()

	res := WindowResult{
		Seq:                 seq,
		Start:               d.windowStart,
		End:                 now,
		Subscribers:         snap.Subscribers(),
		DetectedSubscribers: snap.CountAnyDetected(),
	}
	for _, dt := range snap.Detections() {
		res.Detections = append(res.Detections, Detection{
			Subscriber: uint64(dt.Sub),
			Rule:       dict.Rules[dt.Rule].Name,
			Level:      dict.Rules[dt.Rule].Level.String(),
			First:      dt.First.Time(),
		})
	}
	// The snapshot orders by rule index; present rule names in the
	// same order Detections() sorts.
	sortDetections(res.Detections)
	for i := range dict.Rules {
		if n := snap.CountDetected(i); n > 0 {
			if res.RuleCounts == nil {
				res.RuleCounts = make(map[string]int)
			}
			res.RuleCounts[dict.Rules[i].Name] = n
		}
	}

	base := d.cutBaselineLocked(now)
	res.RecordsIPv4 = d.base.v4 - base.v4
	res.RecordsIPv6 = d.base.v6 - base.v6
	res.Records = res.RecordsIPv4 + res.RecordsIPv6
	res.SkippedRecords = d.base.skipped - base.skipped
	res.EventsDropped = d.base.evDropped - base.evDropped
	return res
}
