package main

import (
	"errors"
	"io"
	"os"
	"testing"
)

// TestAdversaryUsageErrors pins the exit-2 contract: bad flag values
// and unknown scenario names must surface as a usageError at
// flag-parse time — before the lab build — so main exits 2 with usage
// rather than 1.
func TestAdversaryUsageErrors(t *testing.T) {
	// fs.Usage writes to stderr; silence it for the table run.
	old := os.Stderr
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = null
	defer func() {
		os.Stderr = old
		null.Close()
	}()

	cases := []struct {
		name string
		args []string
	}{
		{"zero trials", []string{"adversary", "-trials", "0"}},
		{"negative trials", []string{"adversary", "-trials", "-3"}},
		{"unknown scenario", []string{"adversary", "-scenario", "wormhole"}},
		{"non-adversary format", []string{"adversary", "-format", "summary"}},
		{"unparsable flag", []string{"adversary", "-trials", "many"}},
		{"zero window", []string{"adversary", "-hours", "0"}},
		{"huge sampling", []string{"adversary", "-sampling", "2000000"}},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil {
			t.Errorf("%s: run(%v) succeeded, want usage error", tc.name, tc.args)
			continue
		}
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: run(%v) = %v; not a usageError (would exit 1, want 2)", tc.name, tc.args, err)
		}
	}
}

// TestAdversaryRunErrorsAreNotUsageErrors: only usage mistakes map to
// exit 2; other command errors stay exit 1.
func TestAdversaryRunErrorsAreNotUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"unknown-command"},
		{},
	} {
		err := run(args)
		if err == nil {
			t.Fatalf("run(%v) succeeded", args)
		}
		var ue usageError
		if errors.As(err, &ue) {
			t.Errorf("run(%v) = usageError %v; want a plain (exit 1) error", args, err)
		}
	}
}

// TestAdversaryCLISmoke runs one tiny baseline experiment end to end
// through the subcommand, with output redirected away.
func TestAdversaryCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a lab")
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	runErr := run([]string{"adversary", "-scenario", "baseline",
		"-trials", "1", "-hours", "24", "-lines", "200", "-format", "csv"})
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("adversary baseline run: %v", runErr)
	}
	if len(out) == 0 {
		t.Fatal("adversary run produced no output")
	}
	want := "scenario,trials,tpr,fpr,fnr"
	if got := string(out[:min(len(out), len(want))]); got != want {
		t.Errorf("csv output starts %q, want %q", got, want)
	}
}
