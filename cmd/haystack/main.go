// Command haystack runs the reproduction experiments, inspects the
// compiled IoT dictionary, and deploys the live UDP collector.
//
// Usage:
//
//	haystack catalog                         print the Table 1 inventory
//	haystack rules                           print the compiled detection rules
//	haystack experiment <ID>|all [flags]     run experiment(s)
//	haystack list                            list experiment IDs
//	haystack detect [-proto P] [-i file]     detect from a flowgen stream
//	haystack listen [-listen spec]...        collect NetFlow/IPFIX over UDP or TCP
//	haystack tail [-addr URL|-log-dir P]     stream a deployment's event log
//	haystack adversary [flags]               run the adversarial scenario matrix
//
// Flags:
//
//	-seed N       world seed (default 1)
//	-lines N      wild-ISP subscriber lines (default 30000)
//	-scale N      counts multiplier to paper scale (default 500)
//	-shards N     parallel detection-engine shards for the wild sweeps
//	              and the wire-fed detect/listen commands (default 1;
//	              any value produces identical outputs)
//	-format F     text | csv | summary (default text; the adversary
//	              matrix renders text | csv | jsonl)
//
// adversary flags (see EXPERIMENTS.md "Adversarial scenarios"):
//
//	-scenario S   all, or one of baseline|evasive|nat-churn|sampling|
//	              exporter (default all)
//	-trials N     independently seeded trials per scenario (default 3)
//	-hours N      observation window length in hours (default 48)
//	-sampling N   1-in-N vantage-point sampling override (0 = scenario
//	              default)
//	-threshold D  detection threshold (default 0.4)
//	-per-rule     include the per-rule quality breakdown
//
// Usage mistakes (unknown scenario, -trials 0, bad format) exit 2;
// run failures exit 1.
//
// listen flags (see docs/OPERATIONS.md for the operator guide):
//
//	-listen SPEC     listener, "host:port", "proto@host:port", or
//	                 "transport+proto@host:port" with transport
//	                 udp|tcp and proto netflow|ipfix|auto; repeatable
//	                 (default auto@:2055). TCP is IPFIX-only
//	                 (RFC 7011 stream framing): "tcp+ipfix@:4739".
//	-udp SPEC        UDP listener, same grammar minus tcp; kept for
//	                 compatibility with earlier releases
//	-max-feeds N     cap on adaptive feed fan-in (default: -shards)
//	-rate-per-feed R records/sec one feed is provisioned for
//	-metrics-addr A  serve metrics over HTTP at A (/metrics JSON with
//	                 transport + detector/window counters, expvar
//	                 /debug/vars)
//	-report D        print a transport-stats line every D (0 = off)
//	-threshold D     detection threshold (default 0.4)
//	-window D        aggregation window: rotate the detector every D,
//	                 printing (and with -export-dir, exporting) each
//	                 closed window (0 = the whole run is one window)
//	-export-dir P    write one export file per window into P
//	-export-format F jsonl | csv | summary (default jsonl)
//	-events          print every detection event as it fires
//	-log-dir P       durable event log: append every detection event
//	                 and window marker to segment files under P, and
//	                 replay the open window from P on startup (crash
//	                 recovery); enables GET /events on -metrics-addr
//	-log-fsync F     log durability: window (default) | event | timer
//	-log-segment-bytes N / -log-segment-age D   segment rotation
//	-log-retain-bytes N  / -log-retain-age D    retention (0 = keep all)
//
// SIGHUP rotates the current window immediately (same as the -window
// timer firing), useful before reading the export directory.
//
// tail flags (one of -addr or -log-dir is required):
//
//	-addr URL     deployment's metrics address (http://host:port);
//	              streams GET /events over long-poll NDJSON
//	-log-dir P    read the log directory directly (works while the
//	              writer is live, or post-mortem)
//	-from N       start offset (default: oldest retained)
//	-follow       keep waiting for new records (otherwise exit once
//	              caught up)
//	-pretty       human-readable lines instead of NDJSON
package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	haystack "repro"
	"repro/internal/collector"
	"repro/internal/eventlog"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "haystack:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: haystack catalog|rules|list|experiment <ID>|all|detect|listen|tail|adversary [flags]")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "world seed")
	lines := fs.Int("lines", 30_000, "wild-ISP subscriber lines")
	scale := fs.Int("scale", 500, "scale factor to paper size")
	shards := fs.Int("shards", 1, "parallel detection-engine shards (outputs are shard-invariant)")
	format := fs.String("format", "text", "output format: text|csv|summary")

	switch cmd {
	case "list":
		for _, e := range haystack.Registry() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return nil

	case "detect":
		// Read a length-prefixed NetFlow/IPFIX stream (flowgen's
		// format) from stdin or a file and report detections:
		//   flowgen -proto netflow -hours 24 | haystack detect
		proto := fs.String("proto", "netflow", "stream protocol: netflow|ipfix")
		threshold := fs.Float64("threshold", 0.4, "detection threshold D")
		input := fs.String("i", "-", "input file (- for stdin)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		sys, err := newSystem(*seed, *lines, *scale, *shards)
		if err != nil {
			return err
		}
		return detectStream(sys, *proto, *threshold, *input)

	case "listen":
		var listeners []collector.Listener
		fs.Func("listen", `listener: "host:port", "proto@host:port", or "transport+proto@host:port", e.g. tcp+ipfix@:4739 (repeatable)`, func(v string) error {
			l, err := collector.ParseListener(v)
			if err != nil {
				return err
			}
			listeners = append(listeners, l)
			return nil
		})
		fs.Func("udp", `UDP listener: "host:port" or "proto@host:port" (repeatable; use -listen for TCP)`, func(v string) error {
			l, err := collector.ParseListener(v)
			if err != nil {
				return err
			}
			if l.Net != "udp" {
				return fmt.Errorf("-udp %s: use -listen for %s listeners", v, l.Net)
			}
			listeners = append(listeners, l)
			return nil
		})
		threshold := fs.Float64("threshold", 0.4, "detection threshold D")
		maxFeeds := fs.Int("max-feeds", 0, "adaptive fan-in cap (0 = -shards)")
		ratePerFeed := fs.Float64("rate-per-feed", collector.DefaultRatePerFeed, "records/sec one feed is provisioned for")
		metricsAddr := fs.String("metrics-addr", "", "HTTP metrics listen address (empty = off)")
		reportEvery := fs.Duration("report", 0, "print transport stats at this interval (0 = off)")
		window := fs.Duration("window", 0, "aggregation window: rotate and report every D (0 = one window per run)")
		exportDir := fs.String("export-dir", "", "write one export file per rotated window into this directory")
		exportFormat := fs.String("export-format", "jsonl", "export file format: jsonl|csv|summary")
		events := fs.Bool("events", false, "print each detection event as it fires")
		logDir := fs.String("log-dir", "", "durable event log directory (empty = no log)")
		logFsync := fs.String("log-fsync", "", "log fsync policy: window|event|timer (default window)")
		logSegmentBytes := fs.Int64("log-segment-bytes", 0, "log segment size before rotation (0 = default 64 MiB)")
		logSegmentAge := fs.Duration("log-segment-age", 0, "log segment age before rotation (0 = size-only)")
		logRetainBytes := fs.Int64("log-retain-bytes", 0, "delete oldest log segments past this total size (0 = keep all)")
		logRetainAge := fs.Duration("log-retain-age", 0, "delete log segments older than this (0 = keep all)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		switch *exportFormat {
		case "jsonl", "csv", "summary":
		default:
			return fmt.Errorf("unknown -export-format %q (want jsonl, csv, or summary)", *exportFormat)
		}
		if *logDir == "" {
			for _, name := range []string{"log-fsync", "log-segment-bytes", "log-segment-age", "log-retain-bytes", "log-retain-age"} {
				name := name
				fs.Visit(func(f *flag.Flag) {
					if f.Name == name {
						fmt.Fprintf(os.Stderr, "haystack: -%s has no effect without -log-dir\n", name)
					}
				})
			}
		}
		if *exportDir == "" {
			fs.Visit(func(f *flag.Flag) {
				if f.Name == "export-format" {
					fmt.Fprintln(os.Stderr, "haystack: -export-format has no effect without -export-dir")
				}
			})
		}
		if len(listeners) == 0 {
			listeners = []collector.Listener{{Addr: ":2055"}}
		}
		sys, err := newSystem(*seed, *lines, *scale, *shards)
		if err != nil {
			return err
		}
		return listen(sys, listenOpts{
			listeners:    listeners,
			threshold:    *threshold,
			maxFeeds:     *maxFeeds,
			ratePerFeed:  *ratePerFeed,
			metricsAddr:  *metricsAddr,
			report:       *reportEvery,
			window:       *window,
			exportDir:    *exportDir,
			exportFormat: *exportFormat,
			events:       *events,
			log: haystack.EventLogConfig{
				Dir:          *logDir,
				SegmentBytes: *logSegmentBytes,
				SegmentAge:   *logSegmentAge,
				RetainBytes:  *logRetainBytes,
				RetainAge:    *logRetainAge,
				Fsync:        *logFsync,
			},
		})

	case "tail":
		return cmdTail(fs, rest)

	case "adversary":
		return cmdAdversary(fs, rest, seed, lines, shards, format)

	case "catalog", "rules":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		sys, err := newSystem(*seed, *lines, *scale, *shards)
		if err != nil {
			return err
		}
		if cmd == "catalog" {
			tbl, err := sys.Run("T1")
			if err != nil {
				return err
			}
			return render(*format, tbl)
		}
		for _, r := range sys.Rules() {
			parent := ""
			if r.Parent != "" {
				parent = " parent=" + r.Parent
			}
			fmt.Printf("%-22s level=%-4s domains=%-3d products=%v%s\n",
				r.Name, r.Level, len(r.Domains), r.Products, parent)
		}
		return nil

	case "experiment":
		if len(rest) == 0 {
			return fmt.Errorf("usage: haystack experiment <ID>|all [flags]")
		}
		id := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		sys, err := newSystem(*seed, *lines, *scale, *shards)
		if err != nil {
			return err
		}
		if id == "all" {
			for _, tbl := range sys.RunAll() {
				if err := render(*format, tbl); err != nil {
					return err
				}
			}
			return nil
		}
		tbl, err := sys.Run(id)
		if err != nil {
			return err
		}
		return render(*format, tbl)

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func detectStream(sys *haystack.System, proto string, threshold float64, input string) error {
	var r io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReader(r)
	// The detector runs the sharded pipeline under the hood (-shards
	// flows through the system config); a single input stream drives
	// one feed handle.
	det := sys.NewDetector(threshold)
	defer det.Close()
	f := det.NewFeed()
	feed := f.FeedNetFlow
	if proto == "ipfix" {
		feed = f.FeedIPFIX
	} else if proto != "netflow" {
		return fmt.Errorf("unknown protocol %q", proto)
	}

	messages := 0
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("reading length prefix: %w", err)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > 1<<20 {
			return fmt.Errorf("implausible message length %d", n)
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(br, msg); err != nil {
			return fmt.Errorf("reading message: %w", err)
		}
		if err := feed(msg); err != nil {
			return fmt.Errorf("message %d: %w", messages, err)
		}
		messages++
	}

	dets := det.Detections()
	fmt.Printf("processed %d messages; %d (subscriber, rule) detections\n", messages, len(dets))
	if skipped := det.SkippedRecords(); skipped > 0 {
		fmt.Printf("skipped %d records without a usable IPv4 subscriber address\n", skipped)
	}
	if st := f.Stats(); st.Dropped > 0 || st.Gaps > 0 {
		fmt.Printf("transport: %d untemplated data sets dropped, %d sequence gaps\n", st.Dropped, st.Gaps)
	}
	for _, d := range dets {
		fmt.Printf("  %016x  %-22s %-4s first seen %s\n",
			d.Subscriber, d.Rule, d.Level, d.First.Format("2006-01-02 15h"))
	}
	return nil
}

// listenOpts carries the listen subcommand's flags.
type listenOpts struct {
	listeners    []collector.Listener
	threshold    float64
	maxFeeds     int
	ratePerFeed  float64
	metricsAddr  string
	report       time.Duration
	window       time.Duration
	exportDir    string
	exportFormat string
	events       bool
	log          haystack.EventLogConfig
}

// listen runs the live collector: bind the UDP sockets, ingest until
// SIGINT/SIGTERM — rotating, reporting, and exporting aggregation
// windows as configured — then drain and report how the transport
// behaved.
func listen(sys *haystack.System, opts listenOpts) error {
	det := sys.NewDetector(opts.threshold)
	defer det.Close()

	var exp *haystack.ExportDir
	if opts.exportDir != "" {
		var err error
		if exp, err = haystack.NewExportDir(opts.exportDir, opts.exportFormat); err != nil {
			return err
		}
	}

	// Every closed window (periodic and the final partial one) prints
	// a summary line and, with -export-dir, lands in one file; the
	// per-rule tallies accumulate for the shutdown breakdown.
	var totalWindows, totalWindowDets uint64
	totalByRule := map[string]int{}
	onRotate := func(res haystack.WindowResult) {
		totalWindows++
		totalWindowDets += uint64(len(res.Detections))
		for rule, n := range res.RuleCounts {
			totalByRule[rule] += n
		}
		line := fmt.Sprintf("window %d [%s – %s]: %d detections, %d subscribers seen, %d records",
			res.Seq, res.Start.Format(time.TimeOnly), res.End.Format(time.TimeOnly),
			len(res.Detections), res.Subscribers, res.Records)
		if exp != nil {
			path, err := exp.Export(&res)
			if err != nil {
				fmt.Fprintln(os.Stderr, "haystack: export:", err)
			} else {
				line += " → " + path
			}
		}
		fmt.Println(line)
	}

	// Subscribe before the sockets open: an exporter already blasting
	// the port must not fire detections into the pre-subscription gap.
	if opts.events {
		evCh, cancelEv := det.Subscribe()
		defer cancelEv()
		// haystack:allow golifetime the deferred cancelEv closes evCh, so the printer exits with the subscription
		go func() {
			for ev := range evCh {
				fmt.Printf("event: window %d  %s  %-22s %-4s first seen %s\n",
					ev.Window, haystack.SubscriberHex(ev.Subscriber), ev.Rule, ev.Level,
					ev.First.Format("2006-01-02 15h"))
			}
		}()
	}

	cfg := haystack.ListenConfig{
		Config: collector.Config{
			Listeners:   opts.listeners,
			MaxFeeds:    opts.maxFeeds,
			RatePerFeed: opts.ratePerFeed,
		},
		Window: haystack.WindowConfig{Every: opts.window, OnRotate: onRotate},
		Log:    opts.log,
	}
	srv, err := det.Listen(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	for i, a := range srv.Addrs() {
		fmt.Printf("listening %s/%s (%s), %d engine shards, fan-in cap %d\n",
			a.Network(), a, opts.listeners[i].Proto, det.Shards(), srv.Stats().MaxFeeds)
	}
	if opts.window > 0 {
		fmt.Printf("rotating aggregation windows every %s\n", opts.window)
	}
	if opts.log.Dir != "" {
		rp := srv.Replay()
		fsync := opts.log.Fsync
		if fsync == "" {
			fsync = "window"
		}
		fmt.Printf("event log %s: fsync=%s, %d records replayed, resuming window %d (%d detections restored)\n",
			opts.log.Dir, fsync, rp.Records, rp.ResumedWindow, rp.Restored)
	}

	if opts.metricsAddr != "" {
		mux := http.NewServeMux()
		// One JSON document for the whole deployment: the transport
		// counters plus the detector's window/event counters, and —
		// when the event log is on — the log, replay, writer, and
		// tail-consumer counters.
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			doc := struct {
				Transport collector.Stats               `json:"transport"`
				Detector  haystack.DetectorStats        `json:"detector"`
				EventLog  *eventlog.Stats               `json:"eventlog,omitempty"`
				LogWriter *haystack.EventLogWriterStats `json:"log_writer,omitempty"`
				Replay    *haystack.ReplayStats         `json:"replay,omitempty"`
				Tail      *haystack.TailStats           `json:"tail,omitempty"`
			}{Transport: srv.Stats(), Detector: det.Stats()}
			if l := srv.EventLog(); l != nil {
				ls, ws, rp, ts := l.Stats(), srv.LogWriterStats(), srv.Replay(), srv.TailHandler().Stats()
				doc.EventLog, doc.LogWriter, doc.Replay, doc.Tail = &ls, &ws, &rp, &ts
			}
			enc.Encode(doc)
		})
		mux.Handle("/debug/vars", expvar.Handler())
		expvar.Publish("haystack.collector", expvar.Func(func() any { return srv.Stats() }))
		expvar.Publish("haystack.detector", expvar.Func(func() any { return det.Stats() }))
		if tail := srv.TailHandler(); tail != nil {
			mux.Handle("/events", tail)
			expvar.Publish("haystack.eventlog", expvar.Func(func() any { return srv.EventLog().Stats() }))
			expvar.Publish("haystack.tail", expvar.Func(func() any { return tail.Stats() }))
		}
		msrv := &http.Server{Addr: opts.metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "haystack: metrics server:", err)
			}
		}()
		defer msrv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", opts.metricsAddr)
		if srv.TailHandler() != nil {
			fmt.Printf("event tail on http://%s/events\n", opts.metricsAddr)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP cuts the current window on demand — same path as the
	// -window timer, so the export and the log marker both happen.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	// haystack:allow golifetime exits with ctx at shutdown
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				res := srv.RotateNow()
				fmt.Printf("SIGHUP: rotated window %d (%d detections)\n", res.Seq, len(res.Detections))
			}
		}
	}()
	if opts.report > 0 {
		go func() {
			t := time.NewTicker(opts.report)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					st := srv.Stats()
					ds := det.Stats()
					fmt.Printf("ingest: %d datagrams, %d records, %.0f rec/s ewma, %d/%d feeds, %d dropped, %d decode errors, window %d\n",
						st.Datagrams, st.Records, st.RateEWMA, st.ActiveFeeds, st.MaxFeeds,
						st.DroppedDatagrams, st.DecodeErrors, ds.Windows)
				}
			}
		}()
	}
	<-ctx.Done()
	stop() // restore default signal handling: a second ^C kills
	fmt.Println("\nshutting down: draining sockets and feeds...")
	srv.Close() // drains, then rotates and delivers the final window

	st := srv.Stats()
	fmt.Printf("transport: %d datagrams (%d bytes), %d records, %d dropped datagrams, %d decode errors\n",
		st.Datagrams, st.Bytes, st.Records, st.DroppedDatagrams, st.DecodeErrors)
	if st.StreamConnsTotal > 0 {
		fmt.Printf("stream: %d connections accepted (%d open), %d messages (%d bytes), %d framing errors\n",
			st.StreamConnsTotal, st.StreamConns, st.StreamMessages, st.StreamBytes, st.FramingErrors)
	}
	for _, f := range st.Feeds {
		fmt.Printf("  feed %d: %d sources, %d datagrams, %d records, %d template drops, %d sequence gaps\n",
			f.Feed, f.Sources, f.Datagrams, f.Records, f.TemplateDrops, f.SequenceGaps)
	}
	if skipped := det.SkippedRecords(); skipped > 0 {
		fmt.Printf("skipped %d records without a usable subscriber address\n", skipped)
	}
	ds := det.Stats()
	if ds.EventsDropped > 0 || ds.SubscriberDrops > 0 {
		fmt.Printf("events: %d emitted, %d queue drops, %d subscriber drops\n",
			ds.EventsEmitted, ds.EventsDropped, ds.SubscriberDrops)
	}
	if opts.log.Dir != "" {
		ws := srv.LogWriterStats()
		ls := srv.EventLog().Stats()
		fmt.Printf("event log: %d events appended (%d errors), %d records retained in %d segments (%d bytes)\n",
			ws.EventsAppended, ws.AppendErrors, ls.NextOffset-ls.OldestOffset, ls.Segments, ls.Bytes)
	}
	// Every detection was delivered through a WindowResult (the run is
	// at least one window); summarize the windowed view with the
	// per-rule breakdown accumulated across windows.
	fmt.Printf("windows: %d rotated, %d (subscriber, rule) detections in total across %d rules\n",
		totalWindows, totalWindowDets, len(totalByRule))
	for _, r := range sys.Rules() {
		if n := totalByRule[r.Name]; n > 0 {
			fmt.Printf("  %-22s %-4s %d subscribers\n", r.Name, r.Level, n)
		}
	}
	return nil
}

func newSystem(seed uint64, lines, scale, shards int) (*haystack.System, error) {
	cfg := haystack.DefaultConfig(seed)
	cfg.ISP.Lines = lines
	cfg.ISP.Scale = scale
	cfg.Shards = shards
	return haystack.New(cfg)
}

func render(format string, tbl *experiments.Table) error {
	switch format {
	case "text":
		return report.Text(os.Stdout, tbl)
	case "csv":
		return report.CSV(os.Stdout, tbl)
	case "summary":
		return report.Summary(os.Stdout, tbl)
	}
	return fmt.Errorf("unknown format %q", format)
}
