package main

// The tail subcommand: stream a deployment's durable event log,
// either remotely over the /events long-poll API (-addr) or by
// reading the log directory straight off disk (-log-dir — works while
// the writer is live, and post-mortem on a dead deployment's
// directory). Records print as NDJSON (the TailRecord wire form) or,
// with -pretty, as human-readable lines.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	haystack "repro"
	"repro/internal/eventlog"
)

// tailPollWait is the long-poll hold in remote follow mode: long
// enough to keep request churn negligible, short enough that a dead
// connection is noticed.
const tailPollWait = 30 * time.Second

func cmdTail(fs *flag.FlagSet, rest []string) error {
	addr := fs.String("addr", "", "deployment metrics address, e.g. http://127.0.0.1:8080 (streams /events)")
	logDir := fs.String("log-dir", "", "read this log directory directly instead of over HTTP")
	from := fs.Int64("from", -1, "start offset (-1 = oldest retained)")
	follow := fs.Bool("follow", false, "keep waiting for new records instead of exiting once caught up")
	pretty := fs.Bool("pretty", false, "human-readable lines instead of NDJSON")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if (*addr == "") == (*logDir == "") {
		return usageError{fmt.Errorf("tail: exactly one of -addr or -log-dir is required")}
	}
	if *from < -1 {
		return usageError{fmt.Errorf("tail: bad -from %d", *from)}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	print := printTailNDJSON
	if *pretty {
		print = printTailPretty
	}
	if *logDir != "" {
		return tailDir(ctx, out, *logDir, *from, *follow, print)
	}
	return tailRemote(ctx, out, *addr, *from, *follow, print)
}

// printTailNDJSON re-encodes the record exactly as the wire form.
func printTailNDJSON(w io.Writer, rec *haystack.TailRecord) error {
	return json.NewEncoder(w).Encode(rec)
}

// printTailPretty renders one record as a human line, mirroring the
// listen command's -events printer plus the offset column.
func printTailPretty(w io.Writer, rec *haystack.TailRecord) error {
	if rec.Window != nil {
		_, err := fmt.Fprintf(w, "%8d  window %d closed [%s – %s]: %d/%d subscribers detected, %d records\n",
			rec.Offset, rec.Window.Seq,
			rec.Window.Start.Format(time.TimeOnly), rec.Window.End.Format(time.TimeOnly),
			rec.Window.DetectedSubscribers, rec.Window.Subscribers, rec.Window.Records)
		return err
	}
	ev := rec.Event
	_, err := fmt.Fprintf(w, "%8d  window %d  %s  %-22s %-4s first seen %s\n",
		rec.Offset, ev.Window, haystack.SubscriberHex(ev.Subscriber), ev.Rule, ev.Level,
		ev.First.Format("2006-01-02 15h"))
	return err
}

// tailDir reads a log directory with an eventlog.Follower: deliver
// everything readable, and in follow mode poll until interrupted.
func tailDir(ctx context.Context, out *bufio.Writer, dir string, from int64, follow bool, print func(io.Writer, *haystack.TailRecord) error) error {
	if from < 0 {
		from = 0 // the follower clamps to the oldest retained offset
	}
	f := eventlog.NewFollower(dir, uint64(from))
	for {
		var perr error
		if err := f.Poll(func(off uint64, rec eventlog.Record) bool {
			line := haystack.NewTailRecord(off, &rec)
			perr = print(out, &line)
			return perr == nil
		}); err != nil {
			return err
		}
		if perr != nil {
			return perr
		}
		if err := out.Flush(); err != nil {
			return err
		}
		if !follow {
			break
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(250 * time.Millisecond):
		}
	}
	if n := f.Skipped(); n > 0 {
		fmt.Fprintf(os.Stderr, "haystack: tail: %d records were deleted by retention before they could be read\n", n)
	}
	return nil
}

// tailRemote drains /events over long-poll NDJSON: each response is
// one batch, X-Next-Offset is the next request's from. Without
// -follow it exits at the first empty batch (caught up); with it, the
// wait parameter holds each at-the-tail request open server-side.
func tailRemote(ctx context.Context, out *bufio.Writer, addr string, from int64, follow bool, print func(io.Writer, *haystack.TailRecord) error) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	evURL, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("tail: bad -addr: %w", err)
	}
	evURL = evURL.JoinPath("/events")

	for {
		q := url.Values{}
		if from >= 0 {
			q.Set("from", strconv.FormatInt(from, 10))
		}
		if follow {
			q.Set("wait", tailPollWait.String())
		}
		evURL.RawQuery = q.Encode()
		next, n, err := tailPollOnce(ctx, evURL.String(), out, print)
		if err != nil {
			if ctx.Err() != nil {
				return nil // interrupted mid-request
			}
			return err
		}
		if err := out.Flush(); err != nil {
			return err
		}
		if next >= 0 {
			from = next
		}
		if n == 0 && !follow {
			return nil
		}
		if ctx.Err() != nil {
			return nil
		}
	}
}

// tailPollOnce performs one /events request, printing every record in
// the response; it returns the advertised next offset (-1 if the
// header was absent) and the number of records in the batch.
func tailPollOnce(ctx context.Context, u string, out *bufio.Writer, print func(io.Writer, *haystack.TailRecord) error) (next int64, n int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return -1, 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return -1, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return -1, 0, fmt.Errorf("tail: %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	next = -1
	if v := resp.Header.Get("X-Next-Offset"); v != "" {
		if parsed, perr := strconv.ParseInt(v, 10, 64); perr == nil {
			next = parsed
		}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var rec haystack.TailRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return next, n, nil
			}
			return next, n, fmt.Errorf("tail: decoding response: %w", err)
		}
		n++
		if err := print(out, &rec); err != nil {
			return next, n, err
		}
	}
}
