package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/experiments"
)

// usageError marks a command-line usage mistake — a bad flag value or
// an unknown scenario name. main prints it and exits 2 (the
// conventional usage-error status) instead of 1, so scripts can tell
// "you called me wrong" from "the run failed".
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// cmdAdversary runs the adversarial scenario matrix: N seeded trials
// per scenario against a fresh population and a fresh sharded
// pipeline, scored against the population's ground-truth device
// assignment. All flag validation happens before the (expensive) lab
// build so usage mistakes fail fast with exit 2.
func cmdAdversary(fs *flag.FlagSet, rest []string, seed *uint64, lines, shards *int, format *string) error {
	scenario := fs.String("scenario", "all", "scenario: all|"+adversary.ScenarioNames())
	trials := fs.Int("trials", 3, "independently seeded trials per scenario (>= 1)")
	hours := fs.Int("hours", 48, "observation window length in hours")
	samplingN := fs.Uint64("sampling", 0, "1-in-N vantage-point sampling override (0 = scenario default)")
	threshold := fs.Float64("threshold", 0.4, "detection threshold D")
	perRule := fs.Bool("per-rule", false, "include the per-rule quality breakdown (text/jsonl)")
	if err := fs.Parse(rest); err != nil {
		return usageError{err}
	}

	usage := func(err error) error {
		fmt.Fprintln(os.Stderr, "haystack adversary:", err)
		fs.Usage()
		return usageError{err}
	}

	// The adversary's population default is experiment-scale (2000
	// lines), not the wild-sweep default; an explicit -lines wins.
	expLines := 2000
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "lines" {
			expLines = *lines
		}
	})

	switch *format {
	case "text", "csv", "jsonl":
	default:
		return usage(fmt.Errorf("unknown format %q (adversary formats: text|csv|jsonl)", *format))
	}
	if *scenario != "all" {
		if _, err := adversary.ParseScenario(*scenario); err != nil {
			return usage(err)
		}
	}
	base := adversary.DefaultConfig(adversary.ScenarioBaseline, *seed)
	base.Trials = *trials
	base.Population.Lines = expLines
	base.WindowHours = *hours
	base.Threshold = *threshold
	base.Shards = *shards
	if *samplingN > 0 {
		base.Sampling = *samplingN
	}
	if err := base.Validate(); err != nil {
		return usage(err)
	}

	lab, err := experiments.NewLab(experiments.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	runner := adversary.NewRunner(lab)

	var results []*adversary.ExperimentResult
	if *scenario == "all" {
		if results, err = runner.RunAll(base); err != nil {
			return err
		}
	} else {
		sc, _ := adversary.ParseScenario(*scenario) // validated above
		cfg := adversary.DefaultConfig(sc, *seed)
		cfg.Trials = base.Trials
		cfg.Population = base.Population
		cfg.WindowHours = base.WindowHours
		cfg.Threshold = base.Threshold
		cfg.Shards = base.Shards
		if *samplingN > 0 {
			cfg.Sampling = *samplingN
		}
		res, err := runner.Run(cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	}

	switch *format {
	case "csv":
		return adversary.WriteMatrixCSV(os.Stdout, results)
	case "jsonl":
		return adversary.WriteMatrixJSONL(os.Stdout, results)
	}
	return adversary.WriteMatrixText(os.Stdout, results, *perRule)
}
