// Command haystacklint runs the repository's invariant suite
// (internal/lint): atomicfield, boundedchan, deterministic,
// golifetime, hotpath, lockorder, statscomplete, wirebounds.
//
// Two modes, chosen by the arguments:
//
// Standalone multichecker — the usual way to run it:
//
//	go run ./cmd/haystacklint ./...
//
// loads the named packages (plus dependencies, for cross-package
// facts), prints findings, and exits 1 if there are any outside the
// baseline. Flags:
//
//	-tags TAGS        build tags, passed through to the go command
//	-baseline FILE    suppression baseline (default
//	                  .haystacklint-baseline.json if it exists);
//	                  every entry needs a reviewed reason, and entries
//	                  matching no finding fail the run
//	-write-baseline   write the baseline covering current findings to
//	                  the -baseline path and exit; stamped TODO
//	                  reasons must be edited before the file loads
//	-cache DIR        per-package result cache keyed on content hashes
//	-json             machine-readable report on stdout
//	-sarif FILE       SARIF 2.1.0 log ("-" for stdout); baselined
//	                  findings appear as suppressed results
//
// Vet tool — the same analyzers under the go command's build cache:
//
//	go vet -vettool=$(go env GOPATH)/bin/haystacklint ./...
//
// In this mode cmd/go drives the tool once per package with a vet.cfg
// file (and probes it with -V=full first); see internal/lint's
// unitchecker for the protocol. Test variants are skipped so both
// modes cover the same file sets.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/atomicfield"
	"repro/internal/lint/boundedchan"
	"repro/internal/lint/deterministic"
	"repro/internal/lint/golifetime"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/statscomplete"
	"repro/internal/lint/wirebounds"
)

var analyzers = []*lint.Analyzer{
	atomicfield.Analyzer,
	boundedchan.Analyzer,
	deterministic.Analyzer,
	golifetime.Analyzer,
	hotpath.Analyzer,
	lockorder.Analyzer,
	statscomplete.Analyzer,
	wirebounds.Analyzer,
}

// defaultBaseline is picked up from the run directory when no
// -baseline flag names one, so the checked-in baseline governs plain
// `go run ./cmd/haystacklint ./...` invocations too.
const defaultBaseline = ".haystacklint-baseline.json"

func main() {
	args := os.Args[1:]

	// cmd/go probes any vettool for a build ID before using it; the
	// reply must be `<name> version <non-devel-version>` and becomes
	// the cache key, so it carries a hash of the tool binary — a
	// rebuilt haystacklint must invalidate cached vet results.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			fmt.Printf("haystacklint version haystack0.1 sum=%s\n", selfHash())
			return
		}
		// `go vet` also asks which analyzer flags the tool accepts
		// (JSON, see cmd/go/internal/vet/vetflag.go). None: the suite
		// always runs whole.
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}

	// Under `go vet -vettool=`, the sole positional argument is the
	// path to a generated vet.cfg.
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(lint.RunUnit(os.Stderr, analyzers, args[len(args)-1]))
	}

	var (
		patterns      []string
		jsonOut       bool
		sarifPath     string
		baselinePath  string
		writeBaseline bool
		cacheDir      string
		tags          string
	)
	// takesValue consumes a flag's value from "-flag=v" or "-flag v".
	takesValue := func(i *int, arg string) string {
		if _, v, ok := strings.Cut(arg, "="); ok {
			return v
		}
		*i++
		if *i >= len(args) {
			fmt.Fprintf(os.Stderr, "haystacklint: %s needs a value\n", arg)
			os.Exit(1)
		}
		return args[*i]
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, _, _ := strings.Cut(a, "=")
		switch {
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return
		case a == "-json":
			jsonOut = true
		case a == "-write-baseline":
			writeBaseline = true
		case name == "-sarif":
			sarifPath = takesValue(&i, a)
		case name == "-baseline":
			baselinePath = takesValue(&i, a)
		case name == "-cache":
			cacheDir = takesValue(&i, a)
		case name == "-tags":
			tags = takesValue(&i, a)
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "haystacklint: unknown flag %s\n", a)
			usage()
			os.Exit(1)
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	opts := lint.Options{Dir: ".", Tags: tags, CacheDir: cacheDir, SuiteKey: selfHash()}
	res, err := lint.RunWithOptions(opts, analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haystacklint: %v\n", err)
		os.Exit(1)
	}

	if writeBaseline {
		path := baselinePath
		if path == "" {
			path = defaultBaseline
		}
		if err := lint.WriteBaselineFile(path, res.Findings); err != nil {
			fmt.Fprintf(os.Stderr, "haystacklint: writing baseline: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "haystacklint: wrote %d entries to %s — replace every TODO reason before checking it in\n", len(res.Findings), path)
		return
	}

	if baselinePath == "" {
		if _, err := os.Stat(defaultBaseline); err == nil {
			baselinePath = defaultBaseline
		}
	}
	kept := res.Findings
	var baselined []Finding
	var unused []lint.BaselineEntry
	if baselinePath != "" {
		b, err := lint.LoadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "haystacklint: %v\n", err)
			os.Exit(1)
		}
		kept, baselined, unused = b.Apply(res.Findings)
	}

	if sarifPath != "" {
		all := append(append([]Finding(nil), kept...), baselined...)
		if err := writeOut(sarifPath, func(w io.Writer) error {
			return lint.WriteSARIF(w, analyzers, all)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "haystacklint: writing SARIF: %v\n", err)
			os.Exit(1)
		}
	}

	if jsonOut {
		rep := &lint.Report{
			Findings:   kept,
			Baselined:  baselined,
			Suppressed: res.Suppressed,
			CacheHits:  res.CacheHits,
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "haystacklint: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, f := range kept {
			fmt.Fprintln(os.Stderr, f.String())
		}
	}

	fail := len(kept) > 0
	for _, e := range unused {
		fail = true
		fmt.Fprintf(os.Stderr, "haystacklint: stale baseline entry matches no finding (fix was landed? delete it): %s in %s: %s\n", e.Analyzer, e.File, e.Message)
	}
	if fail {
		os.Exit(1)
	}
}

// Finding aliases the lint type for local brevity.
type Finding = lint.Finding

// writeOut writes through fn to path, with "-" meaning stdout.
func writeOut(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// selfHash digests the running binary. "unknown" (on any error) still
// yields a stable, parseable -V=full line — it just loses cache
// invalidation across rebuilds.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: haystacklint [flags] [packages]

  -tags TAGS        build tags for package loading
  -baseline FILE    suppression baseline (default %s if present)
  -write-baseline   generate the baseline from current findings and exit
  -cache DIR        per-package result cache
  -json             machine-readable report on stdout
  -sarif FILE       SARIF 2.1.0 log ("-" for stdout)

Analyzers:
`, defaultBaseline)
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress a finding with `// haystack:allow <analyzer> <why>` on its line or the line above.\n")
}
