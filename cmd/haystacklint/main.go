// Command haystacklint runs the repository's invariant suite
// (internal/lint): atomicfield, statscomplete, hotpath, boundedchan.
//
// Two modes, chosen by the arguments:
//
// Standalone multichecker — the usual way to run it:
//
//	go run ./cmd/haystacklint ./...
//
// loads the named packages (plus dependencies, for cross-package
// facts), prints findings, and exits 1 if there are any.
//
// Vet tool — the same analyzers under the go command's build cache:
//
//	go vet -vettool=$(go env GOPATH)/bin/haystacklint ./...
//
// In this mode cmd/go drives the tool once per package with a vet.cfg
// file (and probes it with -V=full first); see internal/lint's
// unitchecker for the protocol.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/atomicfield"
	"repro/internal/lint/boundedchan"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/statscomplete"
)

var analyzers = []*lint.Analyzer{
	atomicfield.Analyzer,
	boundedchan.Analyzer,
	hotpath.Analyzer,
	statscomplete.Analyzer,
}

func main() {
	args := os.Args[1:]

	// cmd/go probes any vettool for a build ID before using it; the
	// reply must be `<name> version <non-devel-version>` and becomes
	// the cache key, so it carries a hash of the tool binary — a
	// rebuilt haystacklint must invalidate cached vet results.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			fmt.Printf("haystacklint version haystack0.1 sum=%s\n", selfHash())
			return
		}
		// `go vet` also asks which analyzer flags the tool accepts
		// (JSON, see cmd/go/internal/vet/vetflag.go). None: the suite
		// always runs whole.
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}

	// Under `go vet -vettool=`, the sole positional argument is the
	// path to a generated vet.cfg.
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(lint.RunUnit(os.Stderr, analyzers, args[len(args)-1]))
	}

	patterns := args[:0:0]
	for _, a := range args {
		switch {
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "haystacklint: unknown flag %s\n", a)
			usage()
			os.Exit(1)
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := lint.Run(".", analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haystacklint: %v\n", err)
		os.Exit(1)
	}
	if res.Print(os.Stderr) {
		os.Exit(1)
	}
}

// selfHash digests the running binary. "unknown" (on any error) still
// yields a stable, parseable -V=full line — it just loses cache
// invalidation across rebuilds.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: haystacklint [packages]\n\nAnalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress a finding with `// haystack:allow <analyzer> <why>` on its line or the line above.\n")
}
