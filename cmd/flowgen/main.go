// Command flowgen emits the simulated ISP's sampled ground-truth
// traffic as real NetFlow v9 or IPFIX wire messages — a test-data
// source for external collectors and a synthetic exporter for
// `haystack listen`.
//
// Usage:
//
//	flowgen [-proto netflow|ipfix] [-hours N] [-seed N] [-o file]
//	flowgen -udp host:port [-pace D] ...
//
// With -o (default stdout) each message is prefixed with a 4-byte
// big-endian length. With -udp each message is sent as one datagram
// to the collector, paced by -pace — the shape a real exporter has on
// the wire.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"repro/internal/flow"
	"repro/internal/ipfix"
	"repro/internal/netflow"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/traffic"
	"repro/internal/vantage"
	"repro/internal/world"
)

func main() {
	proto := flag.String("proto", "netflow", "export protocol: netflow|ipfix")
	hours := flag.Int("hours", 24, "hours of traffic to generate")
	seed := flag.Uint64("seed", 1, "world seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	udp := flag.String("udp", "", "send each message as a UDP datagram to this collector address instead of writing a stream")
	pace := flag.Duration("pace", time.Millisecond, "inter-datagram delay in -udp mode")
	flag.Parse()

	if err := run(*proto, *hours, *seed, *out, *udp, *pace); err != nil {
		fmt.Fprintln(os.Stderr, "flowgen:", err)
		os.Exit(1)
	}
}

type exporter interface {
	Export(records []flow.Record, maxRecords int) ([][]byte, error)
}

func run(proto string, hours int, seed uint64, out, udp string, pace time.Duration) error {
	var exp exporter
	switch proto {
	case "netflow":
		exp = netflow.NewExporter(1)
	case "ipfix":
		exp = ipfix.NewExporter(1)
	default:
		return fmt.Errorf("unknown protocol %q", proto)
	}

	// emit writes one wire message: a UDP datagram in -udp mode, a
	// length-prefixed stream record otherwise.
	var emit func(m []byte) error
	if udp != "" {
		conn, err := net.Dial("udp", udp)
		if err != nil {
			return err
		}
		defer conn.Close()
		emit = func(m []byte) error {
			if _, err := conn.Write(m); err != nil {
				return err
			}
			if pace > 0 {
				time.Sleep(pace)
			}
			return nil
		}
	} else {
		var w io.Writer = os.Stdout
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		bw := bufio.NewWriter(w)
		defer bw.Flush()
		emit = func(m []byte) error {
			var lenBuf [4]byte
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(m)))
			if _, err := bw.Write(lenBuf[:]); err != nil {
				return err
			}
			_, err := bw.Write(m)
			return err
		}
	}

	wld, err := world.Build(seed)
	if err != nil {
		return err
	}
	rng := simrand.New(seed)
	vp := vantage.NewISP(rng)
	gen := traffic.New(rng, wld.ResolverOn(wld.Window.Days()[0]), wld.Catalog.Devices())

	window := simtime.Window{
		Start: wld.Window.Start,
		End:   wld.Window.Start + simtime.Hour(hours),
	}
	messages, records := 0, 0
	var emitErr error
	gen.RunWindow(window, traffic.ModeIdle, func(h simtime.Hour, obs []traffic.Observation) {
		if emitErr != nil {
			return
		}
		var recs []flow.Record
		for _, ob := range obs {
			if sampled, ok := vp.Observe(ob.Rec); ok {
				recs = append(recs, sampled)
			}
		}
		msgs, err := exp.Export(recs, 30)
		if err != nil {
			emitErr = err
			return
		}
		for _, m := range msgs {
			if err := emit(m); err != nil {
				emitErr = err
				return
			}
			messages++
		}
		records += len(recs)
	})
	if emitErr != nil {
		return emitErr
	}
	fmt.Fprintf(os.Stderr, "flowgen: wrote %d %s messages (%d sampled records) for %d hours\n",
		messages, proto, records, hours)
	return nil
}
