// Command flowgen emits the simulated ISP's sampled ground-truth
// traffic as real NetFlow v9 or IPFIX wire messages, length-prefixed,
// to stdout or a file — a test-data source for external collectors.
//
// Usage:
//
//	flowgen [-proto netflow|ipfix] [-hours N] [-seed N] [-o file]
//
// Each message is prefixed with a 4-byte big-endian length.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/flow"
	"repro/internal/ipfix"
	"repro/internal/netflow"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/traffic"
	"repro/internal/vantage"
	"repro/internal/world"
)

func main() {
	proto := flag.String("proto", "netflow", "export protocol: netflow|ipfix")
	hours := flag.Int("hours", 24, "hours of traffic to generate")
	seed := flag.Uint64("seed", 1, "world seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	if err := run(*proto, *hours, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "flowgen:", err)
		os.Exit(1)
	}
}

type exporter interface {
	Export(records []flow.Record, maxRecords int) ([][]byte, error)
}

func run(proto string, hours int, seed uint64, out string) error {
	var exp exporter
	switch proto {
	case "netflow":
		exp = netflow.NewExporter(1)
	case "ipfix":
		exp = ipfix.NewExporter(1)
	default:
		return fmt.Errorf("unknown protocol %q", proto)
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	wld, err := world.Build(seed)
	if err != nil {
		return err
	}
	rng := simrand.New(seed)
	vp := vantage.NewISP(rng)
	gen := traffic.New(rng, wld.ResolverOn(wld.Window.Days()[0]), wld.Catalog.Devices())

	window := simtime.Window{
		Start: wld.Window.Start,
		End:   wld.Window.Start + simtime.Hour(hours),
	}
	messages, records := 0, 0
	var emitErr error
	gen.RunWindow(window, traffic.ModeIdle, func(h simtime.Hour, obs []traffic.Observation) {
		if emitErr != nil {
			return
		}
		var recs []flow.Record
		for _, ob := range obs {
			if sampled, ok := vp.Observe(ob.Rec); ok {
				recs = append(recs, sampled)
			}
		}
		msgs, err := exp.Export(recs, 30)
		if err != nil {
			emitErr = err
			return
		}
		for _, m := range msgs {
			var lenBuf [4]byte
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(m)))
			if _, err := bw.Write(lenBuf[:]); err != nil {
				emitErr = err
				return
			}
			if _, err := bw.Write(m); err != nil {
				emitErr = err
				return
			}
			messages++
		}
		records += len(recs)
	})
	if emitErr != nil {
		return emitErr
	}
	fmt.Fprintf(os.Stderr, "flowgen: wrote %d %s messages (%d sampled records) for %d hours\n",
		messages, proto, records, hours)
	return nil
}
