// Command flowgen emits the simulated ISP's sampled ground-truth
// traffic as real NetFlow v9 or IPFIX wire messages — a test-data
// source for external collectors and a synthetic exporter for
// `haystack listen`.
//
// Usage:
//
//	flowgen [-proto netflow|ipfix] [-hours N] [-seed N] [-o file]
//	flowgen -udp host:port [-pace D] [-windows N] [-window-pause D] ...
//	flowgen -proto ipfix -tcp host:port [-pace D] ...
//
// With -o (default stdout) each message is prefixed with a 4-byte
// big-endian length. With -udp each message is sent as one datagram
// to the collector, paced by -pace — the shape a real exporter has on
// the wire. With -tcp the messages ride one RFC 7011 stream
// connection, and flowgen deliberately splits them across arbitrary
// write boundaries (chunk sizes from the seed) so the collector's
// Length-field framing is exercised the way a real TCP path would —
// -tcp requires -proto ipfix, since NetFlow v9 has no length field
// to frame a stream with.
//
// -windows N splits the -hours span into N equal bursts of simulated
// hours, pausing -window-pause between bursts in -udp/-tcp mode — an
// end-to-end driver for `haystack listen -window …` rotation tests:
// point one flowgen per window boundary at the collector and each
// burst lands in its own aggregation window.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"repro/internal/flow"
	"repro/internal/ipfix"
	"repro/internal/netflow"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/traffic"
	"repro/internal/vantage"
	"repro/internal/world"
)

func main() {
	proto := flag.String("proto", "netflow", "export protocol: netflow|ipfix")
	hours := flag.Int("hours", 24, "hours of traffic to generate")
	seed := flag.Uint64("seed", 1, "world seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	udp := flag.String("udp", "", "send each message as a UDP datagram to this collector address instead of writing a stream")
	tcp := flag.String("tcp", "", "send the messages over one RFC 7011 TCP stream connection to this collector address (requires -proto ipfix)")
	pace := flag.Duration("pace", time.Millisecond, "inter-message delay in -udp/-tcp mode")
	windows := flag.Int("windows", 1, "split the -hours span into N equal bursts (simulated aggregation windows)")
	windowPause := flag.Duration("window-pause", time.Second, "pause between bursts in -udp/-tcp mode")
	flag.Parse()

	if err := run(*proto, *hours, *seed, *out, *udp, *tcp, *pace, *windows, *windowPause); err != nil {
		fmt.Fprintln(os.Stderr, "flowgen:", err)
		os.Exit(1)
	}
}

type exporter interface {
	// AppendMessage encodes the next wire message into buf's spare
	// capacity, returning the extended buffer and how many records it
	// consumed — the send loop reuses one encode buffer for the whole
	// run instead of allocating per message.
	AppendMessage(buf []byte, records []flow.Record, maxRecords int) ([]byte, int, error)
}

func run(proto string, hours int, seed uint64, out, udp, tcp string, pace time.Duration,
	windows int, windowPause time.Duration) error {

	if windows < 1 {
		return fmt.Errorf("-windows %d: need at least 1", windows)
	}
	if udp != "" && tcp != "" {
		return fmt.Errorf("-udp and -tcp are mutually exclusive")
	}
	wire := udp != "" || tcp != ""
	if windows > 1 {
		if !wire {
			return fmt.Errorf("-windows requires -udp or -tcp mode (a length-prefixed stream has no window boundaries)")
		}
		if windows > hours {
			return fmt.Errorf("-windows %d exceeds -hours %d (a window spans whole simulated hours)", windows, hours)
		}
	}
	if tcp != "" && proto != "ipfix" {
		return fmt.Errorf("-tcp requires -proto ipfix: NetFlow v9 has no message length field, so a stream cannot be framed (RFC 3954)")
	}
	var exp exporter
	switch proto {
	case "netflow":
		exp = netflow.NewExporter(1)
	case "ipfix":
		exp = ipfix.NewExporter(1)
	default:
		return fmt.Errorf("unknown protocol %q", proto)
	}

	// emit writes one wire message: a UDP datagram in -udp mode, a
	// boundary-scrambled stream write in -tcp mode, a length-prefixed
	// stream record otherwise.
	var emit func(m []byte) error
	if udp != "" {
		conn, err := net.Dial("udp", udp)
		if err != nil {
			return err
		}
		defer conn.Close()
		emit = func(m []byte) error {
			if _, err := conn.Write(m); err != nil {
				return err
			}
			if pace > 0 {
				time.Sleep(pace)
			}
			return nil
		}
	} else if tcp != "" {
		conn, err := net.Dial("tcp", tcp)
		if err != nil {
			return err
		}
		defer conn.Close()
		// Deliberately split every message across arbitrary write
		// boundaries (1..23 bytes, deterministic in the seed): the
		// collector must reassemble by the IPFIX Length field alone,
		// exactly as on a real TCP path where segmentation never
		// respects message boundaries.
		chunks := simrand.New(seed).Fork("tcp-write-boundaries")
		emit = func(m []byte) error {
			for len(m) > 0 {
				n := min(1+chunks.Intn(23), len(m))
				if _, err := conn.Write(m[:n]); err != nil {
					return err
				}
				m = m[n:]
			}
			if pace > 0 {
				time.Sleep(pace)
			}
			return nil
		}
	} else {
		var w io.Writer = os.Stdout
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		bw := bufio.NewWriter(w)
		defer bw.Flush()
		emit = func(m []byte) error {
			var lenBuf [4]byte
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(m)))
			if _, err := bw.Write(lenBuf[:]); err != nil {
				return err
			}
			_, err := bw.Write(m)
			return err
		}
	}

	wld, err := world.Build(seed)
	if err != nil {
		return err
	}
	rng := simrand.New(seed)
	vp := vantage.NewISP(rng)
	gen := traffic.New(rng, wld.ResolverOn(wld.Window.Days()[0]), wld.Catalog.Devices())

	window := simtime.Window{
		Start: wld.Window.Start,
		End:   wld.Window.Start + simtime.Hour(hours),
	}
	// hoursPerWindow splits the span into -windows equal bursts (the
	// last absorbs the remainder); at each boundary the generator
	// pauses so a rotating collector cuts the burst into its own
	// aggregation window.
	hoursPerWindow := hours / windows
	curWindow := 0
	messages, records := 0, 0
	var emitErr error
	// recs and msgBuf are reused across hours: the send path's only
	// steady-state allocations are inside the emit transports.
	var recs []flow.Record
	var msgBuf []byte
	gen.RunWindow(window, traffic.ModeIdle, func(h simtime.Hour, obs []traffic.Observation) {
		if emitErr != nil {
			return
		}
		if windows > 1 && curWindow < windows-1 {
			// The last window absorbs the remainder hours, so it never
			// announces a boundary of its own.
			if w := int(h-window.Start) / hoursPerWindow; w > curWindow {
				fmt.Fprintf(os.Stderr, "flowgen: window %d/%d sent (%d messages so far)\n",
					curWindow+1, windows, messages)
				curWindow = w
				if wire && windowPause > 0 {
					time.Sleep(windowPause)
				}
			}
		}
		recs = recs[:0]
		for _, ob := range obs {
			if sampled, ok := vp.Observe(ob.Rec); ok {
				recs = append(recs, sampled)
			}
		}
		for rem := recs; len(rem) > 0; {
			msgBuf = msgBuf[:0]
			var n int
			var err error
			msgBuf, n, err = exp.AppendMessage(msgBuf, rem, 30)
			if err != nil {
				emitErr = err
				return
			}
			if err := emit(msgBuf); err != nil {
				emitErr = err
				return
			}
			messages++
			rem = rem[n:]
		}
		records += len(recs)
	})
	if emitErr != nil {
		return emitErr
	}
	if windows > 1 {
		fmt.Fprintf(os.Stderr, "flowgen: wrote %d %s messages (%d sampled records) for %d hours in %d windows\n",
			messages, proto, records, hours, windows)
	} else {
		fmt.Fprintf(os.Stderr, "flowgen: wrote %d %s messages (%d sampled records) for %d hours\n",
			messages, proto, records, hours)
	}
	return nil
}
