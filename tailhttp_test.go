package haystack

// Handler-level tests for the /events streaming tail: long-poll
// NDJSON batches with offset continuation, the blocking wait path,
// SSE framing with offsets as event IDs, and consumer accounting.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/eventlog"
)

// newTestLog opens a log in a temp dir and appends n detection events
// followed by one window marker.
func newTestLog(t *testing.T, n int) *eventlog.Log {
	t.Helper()
	l, err := eventlog.Open(eventlog.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	first := time.Date(2019, time.November, 15, 9, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		rec := eventlog.Record{Type: eventlog.TypeEvent, Event: eventlog.Event{
			Subscriber: uint64(i + 1),
			Rule:       "Meross Dooropener",
			Level:      "Man.",
			First:      first,
			Window:     0,
		}}
		if _, err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	marker := eventlog.Record{Type: eventlog.TypeWindow, Window: eventlog.WindowMarker{
		Seq: 0, Start: first, End: first.Add(time.Hour),
		Subscribers: n, DetectedSubscribers: n,
	}}
	if _, err := l.Append(&marker); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLogTailLongPoll(t *testing.T) {
	l := newTestLog(t, 3)
	tail := NewLogTail(l)
	ts := httptest.NewServer(tail)
	defer ts.Close()

	// Full batch from offset 0: three events then the marker, with the
	// next offset advertised for continuation.
	resp, err := http.Get(ts.URL + "/?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	if next := resp.Header.Get("X-Next-Offset"); next != "4" {
		t.Fatalf("X-Next-Offset %q, want 4", next)
	}
	var recs []TailRecord
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var r TailRecord
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 4 {
		t.Fatalf("batch of %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Offset != uint64(i) {
			t.Fatalf("record %d has offset %d", i, r.Offset)
		}
	}
	if recs[0].Type != "event" || recs[0].Event == nil || recs[0].Event.Subscriber != 1 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[3].Type != "window" || recs[3].Window == nil || recs[3].Window.Subscribers != 3 {
		t.Fatalf("record 3 = %+v", recs[3])
	}

	// Resuming mid-log yields only the suffix.
	resp2, err := http.Get(ts.URL + "/?from=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n := 0
	dec = json.NewDecoder(resp2.Body)
	for dec.More() {
		var r TailRecord
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		if r.Offset != uint64(2+n) {
			t.Fatalf("resumed record has offset %d, want %d", r.Offset, 2+n)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("resume from 2 returned %d records, want 2", n)
	}

	// At the head with no wait: an empty 200 batch, same next offset.
	resp3, err := http.Get(ts.URL + "/?from=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.Header.Get("X-Next-Offset") != "4" {
		t.Fatalf("head poll X-Next-Offset %q", resp3.Header.Get("X-Next-Offset"))
	}
	if dec = json.NewDecoder(resp3.Body); dec.More() {
		t.Fatal("head poll returned records")
	}

	// Malformed requests are rejected.
	if resp, err := http.Get(ts.URL + "/?from=banana"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: status %s", resp.Status)
	}
	if resp, err := http.Post(ts.URL, "text/plain", strings.NewReader("x")); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %s", resp.Status)
	}
}

// TestLogTailLongPollWait: a request at the head with wait holds
// until a record is appended, then returns it.
func TestLogTailLongPollWait(t *testing.T) {
	l := newTestLog(t, 1)
	tail := NewLogTail(l)
	ts := httptest.NewServer(tail)
	defer ts.Close()

	head := l.NextOffset()
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		rec := eventlog.Record{Type: eventlog.TypeEvent, Event: eventlog.Event{
			Subscriber: 99, Rule: "Alexa Enabled", Level: "Pl.",
			First: time.Unix(0, 0).UTC(), Window: 1,
		}}
		if _, err := l.Append(&rec); err != nil {
			t.Error(err)
		}
	}()
	start := time.Now()
	resp, err := http.Get(fmt.Sprintf("%s/?from=%d&wait=5s", ts.URL, head))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	<-done
	var r TailRecord
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("waited poll returned no record after %v: %v", time.Since(start), err)
	}
	if r.Offset != head || r.Event == nil || r.Event.Subscriber != 99 {
		t.Fatalf("waited poll returned %+v", r)
	}
}

// TestLogTailSSE: the Accept: text/event-stream mode frames each
// record as one SSE message whose id is the log offset.
func TestLogTailSSE(t *testing.T) {
	l := newTestLog(t, 2)
	tail := NewLogTail(l)
	ts := httptest.NewServer(tail)
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/?from=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	// While the stream is open the consumer is visible in Stats.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := tail.Stats()
		if len(st.Consumers) == 1 && st.Consumers[0].Mode == "sse" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SSE consumer never appeared in stats: %+v", tail.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Read the three live messages (2 events + marker) without waiting
	// for the (unbounded) stream to end.
	sc := bufio.NewScanner(resp.Body)
	var ids []uint64
	var datas []TailRecord
	for sc.Scan() && len(datas) < 3 {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		case strings.HasPrefix(line, "data: "):
			var r TailRecord
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &r); err != nil {
				t.Fatal(err)
			}
			datas = append(datas, r)
		}
	}
	if len(ids) != 3 || len(datas) != 3 {
		t.Fatalf("read %d ids, %d records, want 3 each", len(ids), len(datas))
	}
	for i := range datas {
		if ids[i] != uint64(i) || datas[i].Offset != uint64(i) {
			t.Fatalf("message %d: id %d, offset %d", i, ids[i], datas[i].Offset)
		}
	}
	if datas[2].Type != "window" {
		t.Fatalf("message 2 type %q", datas[2].Type)
	}
	st := tail.Stats()
	if len(st.Consumers) != 1 || st.Consumers[0].Sent != 3 || st.Consumers[0].Offset != 3 || st.Consumers[0].Lag != 0 {
		t.Fatalf("mid-stream stats = %+v", st)
	}

	// Disconnect: the consumer unregisters.
	resp.Body.Close()
	for {
		if len(tail.Stats().Consumers) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("consumer still registered after disconnect: %+v", tail.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
