package haystack

// Crash-replay acceptance for the durable event log: a deployment
// killed mid-window (SIGKILL semantics — no final rotate, no export,
// no closing marker) and restarted from its -log-dir must produce,
// across the crash, the same exported windows as an uninterrupted
// run. The only permitted difference is wall-clock window bounds
// (window_start/window_end are stamped at rotate time), which the
// comparison normalizes away; every §2.1 payload field — subscriber
// hash, rule, level, first-seen hour, window sequence — must be
// byte-identical.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/eventlog"
)

// crashRun holds one deployment instance of the crash-replay test.
type crashRun struct {
	det *Detector
	srv *Server
	fed int // datagrams sent so far, across instances of one run
}

// startCrashRun boots a detector + server over loopback UDP with an
// export directory and a durable log, both shared across restarts.
func startCrashRun(t *testing.T, s *System, shards int, exportDir, logDir string, fed int) *crashRun {
	t.Helper()
	exp, err := NewExportDir(exportDir, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	det := s.NewShardedDetector(0.4, shards)
	srv, err := det.Listen(ListenConfig{
		Config: collector.Config{
			Listeners:  []collector.Listener{{Addr: "127.0.0.1:0"}},
			MaxFeeds:   4,
			QueueLen:   4096,
			ReadBuffer: 4 << 20,
		},
		Window: WindowConfig{OnRotate: func(res WindowResult) {
			if _, err := exp.Export(&res); err != nil {
				t.Errorf("export: %v", err)
			}
		}},
		Log: EventLogConfig{Dir: logDir},
	})
	if err != nil {
		det.Close()
		t.Fatal(err)
	}
	return &crashRun{det: det, srv: srv, fed: fed}
}

// feed sends one exporter stream over the UDP socket and waits until
// the server has received and decoded all of it (Sync → exact state).
func (r *crashRun) feed(t *testing.T, msgs [][]byte) {
	t.Helper()
	conn, err := net.Dial("udp", r.srv.Addrs()[0].String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i, m := range msgs {
		if _, err := conn.Write(m); err != nil {
			t.Fatal(err)
		}
		if i%16 == 15 {
			time.Sleep(time.Millisecond) // pace loopback bursts
		}
	}
	r.fed += len(msgs)
	deadline := time.Now().Add(10 * time.Second)
	for r.srv.Stats().Datagrams < uint64(r.fed) {
		if time.Now().After(deadline) {
			t.Fatalf("socket received %d of %d datagrams", r.srv.Stats().Datagrams, r.fed)
		}
		time.Sleep(time.Millisecond)
	}
	r.srv.Sync()
}

// normalizedExport verifies a window file's trailer, then returns its
// rows with the wall-clock window bounds zeroed — everything a crash
// may NOT change, as comparable bytes.
func normalizedExport(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyWindowJSONL(bytes.NewReader(data)); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	var out bytes.Buffer
	for _, line := range lines[:len(lines)-1] { // drop the trailer
		var row exportRow
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		row.WindowStart, row.WindowEnd = "", ""
		b, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// drainTail reads the full record sequence from a LogTail handler via
// long-poll NDJSON, exactly as a remote `haystack tail` would.
func drainTail(t *testing.T, handler http.Handler) []TailRecord {
	t.Helper()
	ts := httptest.NewServer(handler)
	defer ts.Close()
	var got []TailRecord
	from := uint64(0)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/?from=%d", ts.URL, from))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tail: %s", resp.Status)
		}
		n := 0
		dec := json.NewDecoder(resp.Body)
		for dec.More() {
			var rec TailRecord
			if err := dec.Decode(&rec); err != nil {
				t.Fatal(err)
			}
			got = append(got, rec)
			n++
		}
		resp.Body.Close()
		if n == 0 {
			return got
		}
		fmt.Sscanf(resp.Header.Get("X-Next-Offset"), "%d", &from)
	}
}

// TestDetectorCrashReplay is the acceptance contract of the durable
// log (ISSUE: crash-replay invariant): at 1 and 8 shards, ingest over
// loopback, SIGKILL-equivalent mid-window, restart from the log dir —
// the union of windows exported before the crash and after the replay
// must match an uninterrupted run byte-for-byte (modulo wall-clock
// window bounds), with the window sequence numbering intact; and a
// tail consumer reading from offset 0 must receive exactly the logged
// record sequence.
func TestDetectorCrashReplay(t *testing.T) {
	s := sharedSystem(t)
	const windows = 3
	streams := exporterStreams(t, s, windows)

	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards_%d", shards), func(t *testing.T) {
			// Uninterrupted reference: all three streams through one
			// deployment, RotateNow between streams, Close cuts the last.
			refExport, refLog := t.TempDir(), t.TempDir()
			ref := startCrashRun(t, s, shards, refExport, refLog, 0)
			for wi, msgs := range streams {
				ref.feed(t, msgs)
				if wi < windows-1 {
					if res := ref.srv.RotateNow(); res.Seq != uint64(wi) {
						t.Fatalf("reference window %d rotated with Seq %d", wi, res.Seq)
					}
				}
			}
			if err := ref.srv.Close(); err != nil {
				t.Fatal(err)
			}
			ref.det.Close()

			// Crash run, instance 1: window 0 committed, stream 1 fully
			// ingested (its detections fired and were logged), then the
			// process "dies" — no rotate, no export, no marker.
			crashExport, crashLog := t.TempDir(), t.TempDir()
			run1 := startCrashRun(t, s, shards, crashExport, crashLog, 0)
			run1.feed(t, streams[0])
			if res := run1.srv.RotateNow(); res.Seq != 0 {
				t.Fatalf("crash run window 0 rotated with Seq %d", res.Seq)
			}
			run1.feed(t, streams[1])
			if err := run1.srv.Kill(); err != nil {
				t.Fatal(err)
			}
			run1.det.Close()

			// Instance 2: a fresh detector restarted on the same log
			// dir. Replay must resume the window sequence at 1 with the
			// fired set restored.
			run2 := startCrashRun(t, s, shards, crashExport, crashLog, 0)
			defer run2.det.Close()
			rp := run2.srv.Replay()
			if rp.ResumedWindow != 1 {
				t.Fatalf("replay resumed window %d, want 1 (stats %+v)", rp.ResumedWindow, rp)
			}
			if rp.Restored == 0 {
				t.Fatalf("replay restored nothing: %+v", rp)
			}
			if rp.UnknownRules != 0 {
				t.Fatalf("replay met %d unknown rules", rp.UnknownRules)
			}
			// Cut window 1 from restored state alone, then ingest the
			// final stream live and let Close cut window 2.
			if res := run2.srv.RotateNow(); res.Seq != 1 {
				t.Fatalf("post-replay rotate produced Seq %d, want 1", res.Seq)
			}
			run2.feed(t, streams[2])

			// Tail invariant: a consumer from offset 0 sees exactly the
			// log's record sequence.
			gotTail := drainTail(t, run2.srv.TailHandler())
			var wantTail []TailRecord
			if _, err := run2.srv.EventLog().ReadAt(0, func(off uint64, rec eventlog.Record) bool {
				wantTail = append(wantTail, NewTailRecord(off, &rec))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(wantTail) == 0 {
				t.Fatal("log is empty before the final window")
			}
			if !reflect.DeepEqual(gotTail, wantTail) {
				t.Fatalf("tail consumer saw %d records, log holds %d (or contents diverge)",
					len(gotTail), len(wantTail))
			}

			if err := run2.srv.Close(); err != nil {
				t.Fatal(err)
			}

			// The union of exports across the crash must equal the
			// uninterrupted run, window for window.
			for wi := 0; wi < windows; wi++ {
				name := fmt.Sprintf("window-%012d.jsonl", wi)
				want := normalizedExport(t, filepath.Join(refExport, name))
				got := normalizedExport(t, filepath.Join(crashExport, name))
				if !bytes.Equal(got, want) {
					t.Errorf("window %d diverges across the crash:\ngot  %d bytes\nwant %d bytes",
						wi, len(got), len(want))
				}
				if wi == 1 && len(want) == 0 {
					t.Error("window 1 (the crashed window) is empty; the test exercised nothing")
				}
			}

			// The recovery counters agree with what happened: instance 2
			// opened a cleanly-closed log (Kill syncs), so nothing was
			// truncated, and the replayed record count matches the scan.
			ls := run2.srv.EventLog().Stats()
			if ls.RecoveryTruncatedBytes != 0 {
				t.Errorf("clean shutdown left %d torn bytes", ls.RecoveryTruncatedBytes)
			}
		})
	}
}
