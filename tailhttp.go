package haystack

// HTTP streaming tail of the durable event log: GET /events?from=<N>
// serves the log from offset N onward to remote consumers, so the
// Subscribe stream is available without being in-process and without
// loss on reconnect (the consumer resumes from its last offset).
//
// Two wire modes share the handler:
//
//   - SSE (Accept: text/event-stream): an unbounded stream; each
//     record is one SSE message with `id:` set to the log offset, so
//     EventSource reconnection carries the resume point natively.
//   - long-poll NDJSON (default): one bounded batch per request, with
//     the next offset in the X-Next-Offset header; "wait" holds an
//     at-the-tail request open until data arrives or the wait passes.
//
// Consumers read at their own pace directly from disk — a slow remote
// tail can never drop events the way a slow Subscribe channel does;
// it only falls behind, visibly, in Stats (lag), and loses data only
// when it falls behind retention (Skipped).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eventlog"
)

// tailPollBatch bounds one long-poll response.
const tailPollBatch = 4096

// maxTailWait caps the "wait" parameter of a long-poll request.
const maxTailWait = 60 * time.Second

// TailRecord is the wire form of one log record on the tail API, in
// both the SSE data field and NDJSON lines. Exactly one of Event or
// Window is set, per Type.
type TailRecord struct {
	Offset uint64 `json:"offset"`
	// Type is "event" or "window".
	Type  string          `json:"type"`
	Event *DetectionEvent `json:"event,omitempty"`
	// Window is the rotated window's summary marker.
	Window *TailWindow `json:"window,omitempty"`
}

// TailWindow is the wire form of a window marker.
type TailWindow struct {
	Seq                 uint64         `json:"seq"`
	Start               time.Time      `json:"start"`
	End                 time.Time      `json:"end"`
	Subscribers         int            `json:"subscribers"`
	DetectedSubscribers int            `json:"detected_subscribers"`
	Records             uint64         `json:"records"`
	RecordsIPv4         uint64         `json:"records_ipv4"`
	RecordsIPv6         uint64         `json:"records_ipv6"`
	SkippedRecords      uint64         `json:"skipped_records"`
	EventsDropped       uint64         `json:"events_dropped"`
	RuleCounts          map[string]int `json:"rule_counts,omitempty"`
}

// NewTailRecord converts a log record at offset off to its wire form
// — what `haystack tail -log-dir` prints when reading a log directory
// without going through the HTTP endpoint.
func NewTailRecord(off uint64, rec *eventlog.Record) TailRecord { return tailRecord(off, rec) }

// tailRecord converts a log record to its wire form.
func tailRecord(off uint64, rec *eventlog.Record) TailRecord {
	if rec.Type == eventlog.TypeWindow {
		w := rec.Window
		return TailRecord{Offset: off, Type: "window", Window: &TailWindow{
			Seq:                 w.Seq,
			Start:               w.Start,
			End:                 w.End,
			Subscribers:         w.Subscribers,
			DetectedSubscribers: w.DetectedSubscribers,
			Records:             w.Records,
			RecordsIPv4:         w.RecordsIPv4,
			RecordsIPv6:         w.RecordsIPv6,
			SkippedRecords:      w.SkippedRecords,
			EventsDropped:       w.EventsDropped,
			RuleCounts:          w.RuleCounts,
		}}
	}
	e := rec.Event
	return TailRecord{Offset: off, Type: "event", Event: &DetectionEvent{
		Subscriber: e.Subscriber,
		Rule:       e.Rule,
		Level:      e.Level,
		First:      e.First,
		Window:     e.Window,
	}}
}

// LogTail serves a Log over HTTP (GET /events) and accounts for its
// consumers. Create with NewLogTail; Server.TailHandler returns the
// listening deployment's instance.
type LogTail struct {
	log    *eventlog.Log
	nextID atomic.Uint64
	// retentionSkips counts records consumers requested but retention
	// had already deleted (their from was clamped forward).
	retentionSkips atomic.Uint64

	mu        sync.Mutex
	consumers map[*tailConsumer]struct{}
}

// tailConsumer is one live tail connection's accounting.
type tailConsumer struct {
	id     uint64
	remote string
	mode   string // "sse" or "poll"
	offset atomic.Uint64
	sent   atomic.Uint64
}

// NewLogTail returns an HTTP handler tailing l.
func NewLogTail(l *eventlog.Log) *LogTail {
	return &LogTail{log: l, consumers: make(map[*tailConsumer]struct{})}
}

// TailConsumerStats is one live tail connection in TailStats.
//
// haystack:metrics-struct — every exported field must be filled by a
// haystack:metrics-export function (enforced by haystacklint).
type TailConsumerStats struct {
	ID     uint64 `json:"id"`
	Remote string `json:"remote"`
	// Mode is "sse" or "poll".
	Mode string `json:"mode"`
	// Offset is the next offset this consumer will read; Lag how many
	// records it is behind the log head; Sent how many records it has
	// been sent on this connection.
	Offset uint64 `json:"offset"`
	Lag    uint64 `json:"lag"`
	Sent   uint64 `json:"sent"`
}

// TailStats is the tail endpoint's slice of the metrics surface.
//
// haystack:metrics-struct — every exported field must be filled by a
// haystack:metrics-export function (enforced by haystacklint).
type TailStats struct {
	// Consumers lists the live connections, sorted by ID.
	Consumers []TailConsumerStats `json:"consumers,omitempty"`
	// RetentionSkips counts records consumers asked for after
	// retention had deleted them (the read was clamped forward).
	RetentionSkips uint64 `json:"retention_skips"`
}

// Stats snapshots the endpoint's consumer accounting.
//
// Stats is also haystack:deterministic — the consumer set is a map,
// so the slice is sorted before it reaches the /metrics encoder.
//
// haystack:metrics-export
func (t *LogTail) Stats() TailStats {
	head := t.log.NextOffset()
	t.mu.Lock()
	out := TailStats{RetentionSkips: t.retentionSkips.Load()}
	for c := range t.consumers {
		off := c.offset.Load()
		var lag uint64
		if head > off {
			lag = head - off
		}
		out.Consumers = append(out.Consumers, TailConsumerStats{
			ID:     c.id,
			Remote: c.remote,
			Mode:   c.mode,
			Offset: off,
			Lag:    lag,
			Sent:   c.sent.Load(),
		})
	}
	t.mu.Unlock()
	sort.Slice(out.Consumers, func(i, j int) bool { return out.Consumers[i].ID < out.Consumers[j].ID })
	return out
}

func (t *LogTail) register(c *tailConsumer) {
	t.mu.Lock()
	t.consumers[c] = struct{}{}
	t.mu.Unlock()
}

func (t *LogTail) unregister(c *tailConsumer) {
	t.mu.Lock()
	delete(t.consumers, c)
	t.mu.Unlock()
}

// ServeHTTP implements GET /events?from=<offset>[&wait=<duration>].
func (t *LogTail) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	from := t.log.OldestOffset()
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad from %q: %v", v, err), http.StatusBadRequest)
			return
		}
		from = n
	}
	c := &tailConsumer{id: t.nextID.Add(1), remote: r.RemoteAddr, mode: "poll"}
	c.offset.Store(from)
	if acceptsSSE(r) {
		c.mode = "sse"
	}
	t.register(c)
	defer t.unregister(c)
	if c.mode == "sse" {
		t.serveSSE(w, r, c)
		return
	}
	t.servePoll(w, r, c)
}

// acceptsSSE reports whether the request negotiates Server-Sent
// Events.
func acceptsSSE(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		if mt == "text/event-stream" {
			return true
		}
	}
	return false
}

// clampRetention advances from past a retention purge, counting what
// the consumer lost.
func (t *LogTail) clampRetention(from uint64) uint64 {
	if oldest := t.log.OldestOffset(); from < oldest {
		t.retentionSkips.Add(oldest - from)
		return oldest
	}
	return from
}

// serveSSE streams records as Server-Sent Events until the client
// disconnects or the log closes. Each message's id is the record's
// offset — EventSource's Last-Event-ID makes reconnection lossless
// (modulo retention) without any client bookkeeping.
func (t *LogTail) serveSSE(w http.ResponseWriter, r *http.Request, c *tailConsumer) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	enc := json.NewEncoder(w) // haystack:allow deterministic encoding/json on structs is key-order stable
	from := c.offset.Load()
	for {
		from = t.clampRetention(from)
		var werr error
		next, err := t.log.ReadAt(from, func(off uint64, rec eventlog.Record) bool {
			line := tailRecord(off, &rec)
			if _, werr = fmt.Fprintf(w, "id: %d\ndata: ", off); werr != nil {
				return false
			}
			if werr = enc.Encode(&line); werr != nil { // Encode ends the data line with \n
				return false
			}
			if _, werr = fmt.Fprint(w, "\n"); werr != nil {
				return false
			}
			c.sent.Add(1)
			return true
		})
		if werr != nil {
			return // client gone
		}
		if err != nil {
			if errors.Is(err, eventlog.ErrCorrupt) {
				return // mid-log corruption: terminate rather than skip silently
			}
			// Retention deleted a segment under the read; clamp and
			// retry from the new horizon.
			from = t.clampRetention(next)
			continue
		}
		c.offset.Store(next)
		fl.Flush()
		from = next
		if err := t.log.WaitAppend(r.Context(), next); err != nil {
			return // client disconnected or log closed
		}
	}
}

// servePoll answers one bounded NDJSON batch. An empty batch with
// wait > 0 blocks until a record arrives or the wait passes; the
// response's X-Next-Offset is the from of the follow-up request.
func (t *LogTail) servePoll(w http.ResponseWriter, r *http.Request, c *tailConsumer) {
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			http.Error(w, fmt.Sprintf("bad wait %q", v), http.StatusBadRequest)
			return
		}
		wait = min(d, maxTailWait)
	}
	from := t.clampRetention(c.offset.Load())
	if wait > 0 && from >= t.log.NextOffset() {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		err := t.log.WaitAppend(ctx, from)
		cancel()
		if err != nil && r.Context().Err() != nil {
			return // client gone; timeout alone falls through to an empty batch
		}
		from = t.clampRetention(from)
	}

	type pending struct {
		off uint64
		rec eventlog.Record
	}
	batch := make([]pending, 0, 64)
	next, err := t.log.ReadAt(from, func(off uint64, rec eventlog.Record) bool {
		batch = append(batch, pending{off, rec})
		return len(batch) < tailPollBatch
	})
	if err != nil && len(batch) == 0 {
		if errors.Is(err, eventlog.ErrCorrupt) {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// Retention raced the read before anything was collected; the
		// client retries from the advanced offset.
		next = t.clampRetention(next)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Next-Offset", strconv.FormatUint(next, 10))
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w) // haystack:allow deterministic encoding/json on structs is key-order stable
	for i := range batch {
		line := tailRecord(batch[i].off, &batch[i].rec)
		if enc.Encode(&line) != nil {
			return
		}
		c.sent.Add(1)
	}
	c.offset.Store(next)
}
