package haystack

// The durable detection event log, wired into the Detector/Server
// layer. internal/eventlog owns the on-disk format (segments, CRC32C
// framing, rotation, retention); this file owns the semantics on top:
//
//   - the log writer is an ordinary SubscribeNamed("eventlog")
//     consumer appending every DetectionEvent, plus a WindowMarker
//     appended after each rotated window's OnRotate delivery — so a
//     marker for window n in the log means window n was cut AND
//     reached its consumers (export directory included);
//   - ReplayLog rebuilds the in-progress window after a crash: the
//     resume sequence W is one past the highest marker, and every
//     logged event stamped with window ≥ W is restored into the
//     detector (fired set + first-detection hour), so the restarted
//     node continues the window series instead of starting blind.
//
// What replay deliberately does NOT rebuild: partial evidence. A rule
// at 2 of 3 required domains when the process died starts over — only
// crossings that actually fired (and were appended) survive, which is
// the honest reading of an event log. Events still queued in channels
// at the instant of death are lost with the process; the fsync policy
// (EventLogConfig.Fsync) bounds how much of what WAS appended can
// additionally be lost by the kernel.

import (
	"fmt"
	"time"

	"repro/internal/detect"
	"repro/internal/eventlog"
	"repro/internal/simtime"
)

// EventLogConfig configures the durable detection event log of a
// listening deployment (ListenConfig.Log). The zero value disables
// logging; a Dir enables it with defaults for everything else.
type EventLogConfig struct {
	// Dir is the log directory, created if needed.
	Dir string
	// SegmentBytes and SegmentAge drive segment rotation (defaults:
	// 64 MiB, size-only).
	SegmentBytes int64
	SegmentAge   time.Duration
	// RetainBytes and RetainAge bound the log: oldest whole segments
	// are deleted past either budget (0 = unlimited).
	RetainBytes int64
	RetainAge   time.Duration
	// Fsync is the durability policy: "window" (default; sync at every
	// window marker), "event" (sync per record), or "timer" (sync
	// every FsyncInterval, default 1s).
	Fsync         string
	FsyncInterval time.Duration
}

// options translates the public config into eventlog.Options.
func (c EventLogConfig) options() (eventlog.Options, error) {
	pol := eventlog.FsyncWindow
	if c.Fsync != "" {
		var err error
		if pol, err = eventlog.ParseFsyncPolicy(c.Fsync); err != nil {
			return eventlog.Options{}, err
		}
	}
	return eventlog.Options{
		Dir:           c.Dir,
		SegmentBytes:  c.SegmentBytes,
		SegmentAge:    c.SegmentAge,
		RetainBytes:   c.RetainBytes,
		RetainAge:     c.RetainAge,
		Fsync:         pol,
		FsyncInterval: c.FsyncInterval,
	}, nil
}

// ReplayStats reports what ReplayLog rebuilt from a log directory.
type ReplayStats struct {
	// Records is the total log records scanned; Markers how many were
	// window markers.
	Records uint64 `json:"records"`
	Markers uint64 `json:"markers"`
	// ResumedWindow is the sequence number the detector resumed at:
	// one past the highest committed marker (0 for a fresh log).
	ResumedWindow uint64 `json:"resumed_window"`
	// Restored counts detections restored into the resumed window;
	// SkippedClosed counts event records belonging to already-
	// committed windows (history, not state); UnknownRules counts
	// events naming rules absent from the current dictionary.
	Restored      int    `json:"restored"`
	SkippedClosed uint64 `json:"skipped_closed"`
	UnknownRules  uint64 `json:"unknown_rules"`
}

// ReplayLog rebuilds the detector's in-progress window from a durable
// event log: it scans the whole retained log once to find the highest
// committed window marker, restores every event stamped with a window
// at or past the resume point into the pipeline (fired set and
// first-detection hour — no re-fire, no Subscribe events), and
// advances the window sequence so the next Rotate continues the
// series. Call it on a fresh or quiescent detector, before any
// ingestion; Listen does exactly that when ListenConfig.Log is set.
//
// The event/marker interleaving in the log is handled by the window
// stamp, not by position: an event of a closed window appended after
// its marker (the writer is asynchronous) is skipped, and an event of
// the open window appended before the previous marker is restored.
func (d *Detector) ReplayLog(l *eventlog.Log) (ReplayStats, error) {
	var st ReplayStats
	oldest := l.OldestOffset()

	// Pass 1: the resume point. W = highest marker seq + 1.
	resume := uint64(0)
	if _, err := l.ReadAt(oldest, func(_ uint64, rec eventlog.Record) bool {
		st.Records++
		if rec.Type == eventlog.TypeWindow {
			st.Markers++
			if rec.Window.Seq+1 > resume {
				resume = rec.Window.Seq + 1
			}
		}
		return true
	}); err != nil {
		return st, fmt.Errorf("haystack: replay: %w", err)
	}
	st.ResumedWindow = resume

	// Pass 2: restore the open window's events. Restore is idempotent,
	// so duplicate events (or a replay of a replayed log) are safe.
	dict := d.pipe.Dictionary()
	if _, err := l.ReadAt(oldest, func(_ uint64, rec eventlog.Record) bool {
		if rec.Type != eventlog.TypeEvent {
			return true
		}
		if rec.Event.Window < resume {
			st.SkippedClosed++
			return true
		}
		ri := dict.RuleIndex(rec.Event.Rule)
		if ri < 0 {
			// The dictionary changed across the restart and this rule
			// no longer exists; its detection cannot be represented.
			st.UnknownRules++
			return true
		}
		d.pipe.Restore(detect.SubID(rec.Event.Subscriber), ri, simtime.HourOf(rec.Event.First))
		st.Restored++
		return true
	}); err != nil {
		return st, fmt.Errorf("haystack: replay: %w", err)
	}

	d.pipe.SetWindow(resume)
	d.rotateMu.Lock()
	d.cutBaselineLocked(time.Now())
	d.rotateMu.Unlock()
	return st, nil
}

// openLog opens (and replays) the configured log and starts the
// writer subscription. Called by Listen before the sockets bind.
func (s *Server) openLog(cfg EventLogConfig) error {
	opts, err := cfg.options()
	if err != nil {
		return err
	}
	l, err := eventlog.Open(opts)
	if err != nil {
		return err
	}
	replay, err := s.det.ReplayLog(l)
	if err != nil {
		l.Close()
		return err
	}
	s.log = l
	s.replay = replay
	s.tail = NewLogTail(l)
	ch, cancel := s.det.SubscribeNamed("eventlog")
	s.logCancel = cancel
	s.logDone = make(chan struct{}) // haystack:unbounded close-only writer-exit acknowledgement
	// haystack:allow golifetime the writer exits when its subscription channel closes (logCancel or Detector.Close), joined via logDone
	go s.logWriter(ch)
	return nil
}

// logWriter is the log's Subscribe consumer: one goroutine draining
// the subscription into Append. It exits when the channel closes
// (cancel or Detector.Close), after draining everything buffered —
// which is why shutdown cancels only after flushEvents.
func (s *Server) logWriter(ch <-chan DetectionEvent) {
	defer close(s.logDone)
	var rec eventlog.Record
	for ev := range ch {
		rec = eventlog.Record{Type: eventlog.TypeEvent, Event: eventlog.Event{
			Subscriber: ev.Subscriber,
			Rule:       ev.Rule,
			Level:      ev.Level,
			First:      ev.First,
			Window:     ev.Window,
		}}
		if _, err := s.log.Append(&rec); err != nil {
			s.logErrs.Add(1)
		} else {
			s.logEvents.Add(1)
		}
	}
}

// appendMarker commits one rotated window to the log. Runs under
// cutMu after the window's OnRotate delivery.
func (s *Server) appendMarker(res *WindowResult) {
	if s.log == nil {
		return
	}
	rec := eventlog.Record{Type: eventlog.TypeWindow, Window: eventlog.WindowMarker{
		Seq:                 res.Seq,
		Start:               res.Start,
		End:                 res.End,
		Subscribers:         res.Subscribers,
		DetectedSubscribers: res.DetectedSubscribers,
		Records:             res.Records,
		RecordsIPv4:         res.RecordsIPv4,
		RecordsIPv6:         res.RecordsIPv6,
		SkippedRecords:      res.SkippedRecords,
		EventsDropped:       res.EventsDropped,
		RuleCounts:          res.RuleCounts,
	}}
	if _, err := s.log.Append(&rec); err != nil {
		s.logErrs.Add(1)
	}
}

// finishLog drains and closes the log at shutdown: flush the event
// path so the writer's channel holds everything emitted, cancel the
// subscription (the writer drains the buffered tail and exits), then
// sync-close the log. Runs inside stopOnce.
func (s *Server) finishLog() {
	if s.log == nil {
		return
	}
	s.det.pipe.Sync()
	s.det.flushEvents(5 * time.Second)
	s.logCancel()
	<-s.logDone
	s.logClosErr = s.log.Close()
}

// teardownLog aborts the log wiring when Listen fails after openLog.
func (s *Server) teardownLog() {
	if s.log == nil {
		return
	}
	s.logCancel()
	<-s.logDone
	s.log.Close()
}

// EventLog returns the server's open log, or nil when ListenConfig.
// Log was unset. The log is owned by the server; callers may read
// (ReadAt, Stats, WaitAppend) but must not Close it.
func (s *Server) EventLog() *eventlog.Log { return s.log }

// TailHandler returns the HTTP handler streaming the log to remote
// consumers (/events; see LogTail), or nil when logging is disabled.
func (s *Server) TailHandler() *LogTail { return s.tail }

// Replay reports what the startup replay rebuilt; all zeros when
// logging is disabled or the log was fresh.
func (s *Server) Replay() ReplayStats { return s.replay }

// EventLogWriterStats is the log writer's slice of the metrics
// surface; the log's own counters live in eventlog.Stats.
//
// haystack:metrics-struct — every exported field must be filled by a
// haystack:metrics-export function (enforced by haystacklint).
type EventLogWriterStats struct {
	// EventsAppended counts events the writer appended; AppendErrors
	// counts failed appends, events and window markers alike.
	EventsAppended uint64 `json:"events_appended"`
	AppendErrors   uint64 `json:"append_errors"`
}

// LogWriterStats snapshots the writer's counters (zeros when logging
// is disabled).
//
// haystack:metrics-export
func (s *Server) LogWriterStats() EventLogWriterStats {
	return EventLogWriterStats{
		EventsAppended: s.logEvents.Load(),
		AppendErrors:   s.logErrs.Load(),
	}
}
