// Package haystack reproduces "A Haystack Full of Needles: Scalable
// Detection of IoT Devices in the Wild" (Saidi et al., IMC 2020): a
// methodology for detecting consumer IoT devices at subscriber lines
// from passive, sparsely-sampled flow data (NetFlow/IPFIX) at an ISP or
// IXP, without any payload.
//
// The package exposes three layers:
//
//   - System: the assembled simulated world (testbeds, hosting, passive
//     DNS, certificate scans) with the §4 pipeline already run, plus
//     one driver per table/figure of the paper's evaluation;
//   - Detector: the streaming detection engine applied to NetFlow v9 or
//     IPFIX messages, the operational artifact an ISP would deploy;
//   - the experiment registry, used by the CLI and the benchmarks.
//
// Everything is deterministic in the seed. See DESIGN.md for the
// substitution map (what the paper measured vs what is simulated here)
// and EXPERIMENTS.md for paper-vs-measured results.
package haystack

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/ipfix"
	"repro/internal/netflow"
	"repro/internal/simtime"
)

// Config sizes the simulation. The zero value is not usable; start from
// DefaultConfig.
type Config = experiments.Config

// Table is the uniform experiment result: printable rows plus the
// machine-readable statistics asserted in EXPERIMENTS.md.
type Table = experiments.Table

// DefaultConfig returns the test-scale configuration (1:500 of the
// paper's 15 M subscriber lines) for the given seed.
func DefaultConfig(seed uint64) Config { return experiments.DefaultConfig(seed) }

// PaperScaleConfig returns a 1:100 scale model (150k lines), the
// configuration used for the EXPERIMENTS.md headline numbers. Budget a
// few minutes of CPU for the full wild sweep.
func PaperScaleConfig(seed uint64) Config {
	cfg := experiments.DefaultConfig(seed)
	cfg.ISP.Lines = 150_000
	cfg.ISP.Scale = 100
	return cfg
}

// System is the assembled world with the detection dictionary compiled.
type System struct {
	lab *experiments.Lab
}

// New builds a system. The heavyweight simulations (ground truth, wild
// ISP, wild IXP) run lazily on first use.
func New(cfg Config) (*System, error) {
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return nil, err
	}
	return &System{lab: lab}, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Experiment identifies one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(*System) *Table
}

// Registry returns every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"T1", "Table 1: device inventory", func(s *System) *Table { return s.lab.Table1() }},
		{"S41", "§4.1 domain classification census", func(s *System) *Table { return s.lab.Sec41() }},
		{"S42", "§4.2 dedicated vs shared infrastructure", func(s *System) *Table { return s.lab.Sec42() }},
		{"S43", "§4.3 detection-rule census", func(s *System) *Table { return s.lab.Sec43() }},
		{"F5a", "Fig 5(a) service IPs per hour", func(s *System) *Table { return s.lab.Fig5a() }},
		{"F5b", "Fig 5(b) domains per hour", func(s *System) *Table { return s.lab.Fig5b() }},
		{"F5c", "Fig 5(c) cumulative IPs per port class", func(s *System) *Table { return s.lab.Fig5c() }},
		{"F5d", "Fig 5(d) devices per hour", func(s *System) *Table { return s.lab.Fig5d() }},
		{"F6", "Fig 6 heavy-hitter visibility", func(s *System) *Table { return s.lab.Fig6() }},
		{"F8", "Fig 8 packets/hour per domain", func(s *System) *Table { return s.lab.Fig8() }},
		{"F9", "Fig 9 ECDF of packets/hour", func(s *System) *Table { return s.lab.Fig9() }},
		{"F10", "Fig 10 time to detection per threshold", func(s *System) *Table { return s.lab.Fig10() }},
		{"F11", "Fig 11 wild-ISP subscribers per hour/day", func(s *System) *Table { return s.lab.Fig11() }},
		{"F12", "Fig 12 Amazon/Samsung drill-down", func(s *System) *Table { return s.lab.Fig12() }},
		{"F13", "Fig 13 cumulative subscribers and /24s", func(s *System) *Table { return s.lab.Fig13() }},
		{"F14", "Fig 14 other 32 device types per day", func(s *System) *Table { return s.lab.Fig14() }},
		{"F15", "Fig 15 wild-IXP unique IPs per day", func(s *System) *Table { return s.lab.Fig15() }},
		{"F16", "Fig 16 per-AS distribution at the IXP", func(s *System) *Table { return s.lab.Fig16() }},
		{"F17", "Fig 17 single Alexa device at both VPs", func(s *System) *Table { return s.lab.Fig17() }},
		{"F18", "Fig 18 actively-used Alexa lines per hour", func(s *System) *Table { return s.lab.Fig18() }},
		{"S5FP", "§5 false-positive crosscheck", func(s *System) *Table { return s.lab.Sec5FalsePositive() }},
	}
}

// Run executes one experiment by ID.
func (s *System) Run(id string) (*Table, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(s), nil
		}
	}
	return nil, fmt.Errorf("haystack: unknown experiment %q (see Registry)", id)
}

// RunAll executes every experiment in registry order.
func (s *System) RunAll() []*Table {
	var out []*Table
	for _, e := range Registry() {
		out = append(out, e.Run(s))
	}
	return out
}

// RuleSummary describes one compiled detection rule.
type RuleSummary struct {
	Name     string
	Level    string
	Parent   string
	Domains  []string
	Products []string
}

// Rules returns the compiled IoT dictionary's rules, sorted by name.
func (s *System) Rules() []RuleSummary {
	dict := s.lab.Dict
	out := make([]RuleSummary, 0, len(dict.Rules))
	for i := range dict.Rules {
		r := &dict.Rules[i]
		parent := ""
		if r.Parent >= 0 {
			parent = dict.Rules[r.Parent].Name
		}
		out = append(out, RuleSummary{
			Name:     r.Name,
			Level:    r.Level.String(),
			Parent:   parent,
			Domains:  append([]string(nil), r.Domains...),
			Products: append([]string(nil), r.Products...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Catalog returns the testbed inventory backing the system.
func (s *System) Catalog() *catalog.Catalog { return s.lab.W.Catalog }

// StudyStart returns the start of the simulated study window
// (Nov 15, 2019 — the paper's first measurement day).
func (s *System) StudyStart() time.Time { return s.lab.W.Window.Start.Time() }

// ServiceIPs returns the addresses a domain resolves to on the first
// study day — the view a device opening a connection would get. It
// returns nil for unhosted domains.
func (s *System) ServiceIPs(domain string) []netip.Addr {
	return s.lab.W.ResolverOn(s.lab.W.Window.Days()[0]).Resolve(domain)
}

// Detection is one (subscriber, rule) detection event.
type Detection struct {
	// Subscriber is the opaque anonymized subscriber key (the hash of
	// the subscriber-side address for wire-fed detectors).
	Subscriber uint64
	Rule       string
	Level      string
	// First is the start of the hour bin in which the rule fired.
	First time.Time
}

// Detector applies the compiled dictionary to NetFlow v9 / IPFIX
// messages — the operational deployment of the methodology. Not safe
// for concurrent use.
type Detector struct {
	eng *detect.Engine
	nf  *netflow.Collector
	ix  *ipfix.Collector
}

// NewDetector returns a detector at detection threshold d (the paper's
// conservative default is 0.4).
func (s *System) NewDetector(d float64) *Detector {
	return &Detector{
		eng: detect.New(s.lab.Dict, d),
		nf:  netflow.NewCollector(),
		ix:  ipfix.NewCollector(),
	}
}

// subscriberKey anonymizes the subscriber-side address by hashing, as
// §2.1 requires ("anonymize by hashing all user IPs").
func subscriberKey(a netip.Addr) detect.SubID {
	b := a.As4()
	x := uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	x ^= 0x9e3779b97f4a7c15
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return detect.SubID(x)
}

// FeedNetFlow parses one NetFlow v9 message and feeds its records to
// the engine. The flow source is treated as the subscriber side.
func (d *Detector) FeedNetFlow(msg []byte) error {
	recs, err := d.nf.Feed(msg)
	if err != nil {
		return err
	}
	for i := range recs {
		r := &recs[i]
		d.eng.Observe(subscriberKey(r.Key.Src), r.Hour, r.Key.Dst, r.Key.DstPort, r.Packets)
	}
	return nil
}

// FeedIPFIX parses one IPFIX message and feeds its records.
func (d *Detector) FeedIPFIX(msg []byte) error {
	recs, err := d.ix.Feed(msg)
	if err != nil {
		return err
	}
	for i := range recs {
		r := &recs[i]
		d.eng.Observe(subscriberKey(r.Key.Src), r.Hour, r.Key.Dst, r.Key.DstPort, r.Packets)
	}
	return nil
}

// Detections returns every (subscriber, rule) detection so far, sorted
// for determinism.
func (d *Detector) Detections() []Detection {
	dict := d.eng.Dictionary()
	var out []Detection
	d.eng.EachDetected(func(sub detect.SubID, rule int, first simtime.Hour) {
		out = append(out, Detection{
			Subscriber: uint64(sub),
			Rule:       dict.Rules[rule].Name,
			Level:      dict.Rules[rule].Level.String(),
			First:      first.Time(),
		})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subscriber != out[j].Subscriber {
			return out[i].Subscriber < out[j].Subscriber
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Reset clears detector state (start of a new aggregation window).
func (d *Detector) Reset() { d.eng.Reset() }
