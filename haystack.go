// Package haystack reproduces "A Haystack Full of Needles: Scalable
// Detection of IoT Devices in the Wild" (Saidi et al., IMC 2020): a
// methodology for detecting consumer IoT devices at subscriber lines
// from passive, sparsely-sampled flow data (NetFlow/IPFIX) at an ISP or
// IXP, without any payload.
//
// The package exposes three layers:
//
//   - System: the assembled simulated world (testbeds, hosting, passive
//     DNS, certificate scans) with the §4 pipeline already run, plus
//     one driver per table/figure of the paper's evaluation;
//   - Detector: the streaming detection engine applied to NetFlow v9 or
//     IPFIX messages, the operational artifact an ISP would deploy;
//   - the experiment registry, used by the CLI and the benchmarks.
//
// Everything is deterministic in the seed. See DESIGN.md for the
// substitution map (what the paper measured vs what is simulated here)
// and EXPERIMENTS.md for paper-vs-measured results.
package haystack

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/collector"
	"repro/internal/detect"
	"repro/internal/eventlog"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/ipfix"
	"repro/internal/netflow"
	"repro/internal/pipeline"
	"repro/internal/simtime"
)

// Config sizes the simulation. The zero value is not usable; start from
// DefaultConfig.
type Config = experiments.Config

// Table is the uniform experiment result: printable rows plus the
// machine-readable statistics asserted in EXPERIMENTS.md.
type Table = experiments.Table

// DefaultConfig returns the test-scale configuration (1:500 of the
// paper's 15 M subscriber lines) for the given seed.
func DefaultConfig(seed uint64) Config { return experiments.DefaultConfig(seed) }

// PaperScaleConfig returns a 1:100 scale model (150k lines), the
// configuration used for the EXPERIMENTS.md headline numbers. Budget a
// few minutes of CPU for the full wild sweep.
func PaperScaleConfig(seed uint64) Config {
	cfg := experiments.DefaultConfig(seed)
	cfg.ISP.Lines = 150_000
	cfg.ISP.Scale = 100
	return cfg
}

// System is the assembled world with the detection dictionary compiled.
type System struct {
	lab *experiments.Lab
}

// New builds a system. The heavyweight simulations (ground truth, wild
// ISP, wild IXP) run lazily on first use.
func New(cfg Config) (*System, error) {
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return nil, err
	}
	return &System{lab: lab}, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Experiment identifies one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(*System) *Table
}

// Registry returns every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"T1", "Table 1: device inventory", func(s *System) *Table { return s.lab.Table1() }},
		{"S41", "§4.1 domain classification census", func(s *System) *Table { return s.lab.Sec41() }},
		{"S42", "§4.2 dedicated vs shared infrastructure", func(s *System) *Table { return s.lab.Sec42() }},
		{"S43", "§4.3 detection-rule census", func(s *System) *Table { return s.lab.Sec43() }},
		{"F5a", "Fig 5(a) service IPs per hour", func(s *System) *Table { return s.lab.Fig5a() }},
		{"F5b", "Fig 5(b) domains per hour", func(s *System) *Table { return s.lab.Fig5b() }},
		{"F5c", "Fig 5(c) cumulative IPs per port class", func(s *System) *Table { return s.lab.Fig5c() }},
		{"F5d", "Fig 5(d) devices per hour", func(s *System) *Table { return s.lab.Fig5d() }},
		{"F6", "Fig 6 heavy-hitter visibility", func(s *System) *Table { return s.lab.Fig6() }},
		{"F8", "Fig 8 packets/hour per domain", func(s *System) *Table { return s.lab.Fig8() }},
		{"F9", "Fig 9 ECDF of packets/hour", func(s *System) *Table { return s.lab.Fig9() }},
		{"F10", "Fig 10 time to detection per threshold", func(s *System) *Table { return s.lab.Fig10() }},
		{"F11", "Fig 11 wild-ISP subscribers per hour/day", func(s *System) *Table { return s.lab.Fig11() }},
		{"F12", "Fig 12 Amazon/Samsung drill-down", func(s *System) *Table { return s.lab.Fig12() }},
		{"F13", "Fig 13 cumulative subscribers and /24s", func(s *System) *Table { return s.lab.Fig13() }},
		{"F14", "Fig 14 other 32 device types per day", func(s *System) *Table { return s.lab.Fig14() }},
		{"F15", "Fig 15 wild-IXP unique IPs per day", func(s *System) *Table { return s.lab.Fig15() }},
		{"F16", "Fig 16 per-AS distribution at the IXP", func(s *System) *Table { return s.lab.Fig16() }},
		{"F17", "Fig 17 single Alexa device at both VPs", func(s *System) *Table { return s.lab.Fig17() }},
		{"F18", "Fig 18 actively-used Alexa lines per hour", func(s *System) *Table { return s.lab.Fig18() }},
		{"S5FP", "§5 false-positive crosscheck", func(s *System) *Table { return s.lab.Sec5FalsePositive() }},
	}
}

// Run executes one experiment by ID.
func (s *System) Run(id string) (*Table, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(s), nil
		}
	}
	return nil, fmt.Errorf("haystack: unknown experiment %q (see Registry)", id)
}

// RunAll executes every experiment in registry order.
func (s *System) RunAll() []*Table {
	var out []*Table
	for _, e := range Registry() {
		out = append(out, e.Run(s))
	}
	return out
}

// RuleSummary describes one compiled detection rule.
type RuleSummary struct {
	Name     string
	Level    string
	Parent   string
	Domains  []string
	Products []string
}

// Rules returns the compiled IoT dictionary's rules, sorted by name.
func (s *System) Rules() []RuleSummary {
	dict := s.lab.Dict
	out := make([]RuleSummary, 0, len(dict.Rules))
	for i := range dict.Rules {
		r := &dict.Rules[i]
		parent := ""
		if r.Parent >= 0 {
			parent = dict.Rules[r.Parent].Name
		}
		out = append(out, RuleSummary{
			Name:     r.Name,
			Level:    r.Level.String(),
			Parent:   parent,
			Domains:  append([]string(nil), r.Domains...),
			Products: append([]string(nil), r.Products...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Catalog returns the testbed inventory backing the system.
func (s *System) Catalog() *catalog.Catalog { return s.lab.W.Catalog }

// StudyStart returns the start of the simulated study window
// (Nov 15, 2019 — the paper's first measurement day).
func (s *System) StudyStart() time.Time { return s.lab.W.Window.Start.Time() }

// ServiceIPs returns the addresses a domain resolves to on the first
// study day — the view a device opening a connection would get. It
// returns nil for unhosted domains.
func (s *System) ServiceIPs(domain string) []netip.Addr {
	return s.lab.W.ResolverOn(s.lab.W.Window.Days()[0]).Resolve(domain)
}

// Detection is one (subscriber, rule) detection event. Its JSON form
// (MarshalJSON/UnmarshalJSON) uses the same snake_case keys
// WindowResult does, rendering the subscriber as the §2.1 export
// schema's 16-hex-digit hash string (SubscriberHex) — a raw uint64
// would silently corrupt in float64-based JSON consumers, since
// hashes exceed 2^53.
type Detection struct {
	// Subscriber is the opaque anonymized subscriber key (the hash of
	// the subscriber-side address for wire-fed detectors).
	Subscriber uint64
	Rule       string
	Level      string
	// First is the start of the hour bin in which the rule fired.
	First time.Time
}

// detectionJSON is the wire form of Detection; see the type comment.
type detectionJSON struct {
	Subscriber string    `json:"subscriber"`
	Rule       string    `json:"rule"`
	Level      string    `json:"level"`
	First      time.Time `json:"first"`
}

func (d Detection) MarshalJSON() ([]byte, error) {
	return json.Marshal(detectionJSON{SubscriberHex(d.Subscriber), d.Rule, d.Level, d.First})
}

func (d *Detection) UnmarshalJSON(b []byte) error {
	var raw detectionJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	sub, err := strconv.ParseUint(raw.Subscriber, 16, 64)
	if err != nil {
		return fmt.Errorf("haystack: detection subscriber %q: %w", raw.Subscriber, err)
	}
	*d = Detection{Subscriber: sub, Rule: raw.Rule, Level: raw.Level, First: raw.First}
	return nil
}

// Detector applies the compiled dictionary to NetFlow v9 / IPFIX
// messages — the operational deployment of the methodology. Detection
// runs on a sharded pipeline (see internal/pipeline): decoded records
// are partitioned by anonymized subscriber key across worker-owned
// engines, so results are independent of the shard count.
//
// For a live deployment, Listen / ListenAndDetect bind collector
// sockets — UDP for NetFlow v9 / IPFIX datagrams, TCP for RFC 7011
// IPFIX streams — and drive exporter messages through the full stack:
// sockets → feeds → sharded engines (the three layers DESIGN.md
// diagrams), with adaptive feed fan-in and per-feed transport metrics.
//
// # Windowed, event-driven reads
//
// Beyond the pull-everything Detections snapshot, the read side is
// windowed and event-driven — the shape of the paper's §6
// longitudinal results (detections per hour/day, Figs 10, 11, 15):
//
//   - Subscribe streams a DetectionEvent the moment a rule crosses
//     threshold for a subscriber, once per (subscriber, rule) per
//     window, to any number of subscribers;
//   - Rotate atomically cuts an aggregation window — a WindowResult
//     with the window's detections, per-rule counts, and stats deltas
//     — and resets detection state while feeds and template caches
//     survive;
//   - ListenConfig.Window drives Rotate on a period, delivering every
//     WindowResult (including the final partial window at shutdown)
//     to an OnRotate callback — see the haystack.Export writers for
//     the §2.1-anonymized JSONL/CSV schema.
//
// # Concurrency
//
// Wire messages enter through Feed handles (NewFeed). Each Feed owns
// its own wire-format decoders and pipeline producer and must be
// driven from a single goroutine, but any number of Feeds may run
// concurrently — one per collector socket in a deployment. Because
// detection state is keyed by subscriber, feeds should partition the
// subscriber space (as distinct exporters naturally do): a subscriber
// whose records interleave across feeds may see its multi-hour
// first-detection times vary with scheduling.
//
// The zero-setup methods FeedNetFlow/FeedIPFIX drive one implicit
// Feed and are therefore not safe to call concurrently with each
// other; use NewFeed handles for concurrent ingestion. Reading
// (Detections) while feeds are still running is safe but approximate
// — observations in flight may or may not be included, and under
// sustained ingest saturation the read blocks until the pipeline sees
// a momentary lull; quiesce or Close the feeds first for exact,
// prompt results. Reset requires quiescent feeds.
type Detector struct {
	pipe    *pipeline.Pipeline
	skipped atomic.Uint64
	// recordsV4/recordsV6 count records delivered to the pipeline by
	// subscriber address family, across all feeds (§2.1 hashes both).
	recordsV4 atomic.Uint64
	recordsV6 atomic.Uint64

	mu  sync.Mutex
	def *Feed // backs the Detector-level feed methods

	// Event fan-out (events.go): shard workers push FireEvents into
	// evCh via the pipeline hook; the broker goroutine translates and
	// fans them out to Subscribe channels.
	evMu            sync.Mutex
	evSubs          map[*eventSub]struct{}
	evCh            chan pipeline.FireEvent
	evDone          chan struct{}
	evClosed        bool
	evNextID        uint64 // guarded by evMu; names anonymous subscribers
	eventsEmitted   atomic.Uint64
	eventsDropped   atomic.Uint64
	eventsDelivered atomic.Uint64
	subscriberDrops atomic.Uint64

	// Window rotation (window.go): baseline counters for stats deltas
	// and the wall-clock start of the current window.
	rotateMu    sync.Mutex
	windowStart time.Time
	base        windowBaseline
}

// NewDetector returns a detector at detection threshold d (the paper's
// conservative default is 0.4), sharded per the system configuration.
// Call Close when done to stop the shard workers.
func (s *System) NewDetector(d float64) *Detector {
	return s.NewShardedDetector(d, s.lab.Cfg.Shards)
}

// NewShardedDetector returns a detector at detection threshold d with
// an explicit engine-shard count (outputs are shard-invariant).
func (s *System) NewShardedDetector(d float64, shards int) *Detector {
	return &Detector{
		pipe:        pipeline.New(s.lab.Dict, d, shards),
		windowStart: time.Now(),
	}
}

// Feed is one wire-format ingestion handle: a NetFlow v9 and IPFIX
// decoder pair bound to its own pipeline producer. Each Feed must be
// driven from a single goroutine; distinct Feeds may run concurrently.
// Feed satisfies collector.Feed, so the UDP socket layer (Listen,
// ListenAndDetect) drives these handles directly.
type Feed struct {
	d       *Detector
	prod    *pipeline.Producer
	nf      *netflow.Collector
	ix      *ipfix.Collector
	records atomic.Uint64
	// arena receives decoded records for the zero-setup
	// FeedNetFlow/FeedIPFIX entry points; the socket layer hands its
	// own per-lane arena through FeedNetFlowBatch/FeedIPFIXBatch
	// instead. obs is the reusable record→observation staging buffer
	// shared by both paths. Single-goroutine, like the rest of Feed.
	arena flow.Batch
	obs   []pipeline.Obs
}

// NewFeed registers a new ingestion handle, one per collector
// goroutine.
func (d *Detector) NewFeed() *Feed {
	return &Feed{
		d:    d,
		prod: d.pipe.NewProducer(),
		nf:   netflow.NewCollector(),
		ix:   ipfix.NewCollector(),
	}
}

// Close flushes the feed's buffered observations and releases its
// producer. The detector stays readable; closing twice is a no-op.
func (f *Feed) Close() { f.prod.Close() }

// FeedStats are transport-health counters for one feed: records
// delivered to the pipeline, untemplated data sets dropped, and
// exporter sequence gaps. The type is shared with the socket layer
// (internal/collector), which snapshots it per feed for metrics.
type FeedStats = collector.FeedStats

// Stats returns the feed's transport-health counters, summed over its
// NetFlow and IPFIX decoders. All counters are atomics, so Stats is
// safe to call while another goroutine drives the feed — the reading
// is approximate under load, never racy.
func (f *Feed) Stats() FeedStats {
	return FeedStats{
		Records: f.records.Load(),
		Dropped: f.nf.Dropped.Load() + f.ix.Dropped.Load(),
		Gaps:    f.nf.Gaps.Load() + f.ix.Gaps.Load(),
	}
}

// subscriberKey anonymizes the subscriber-side address by hashing, as
// §2.1 requires ("anonymize by hashing all user IPs") — IPv4 and IPv6
// subscribers alike. The IPv4 hash is unchanged from earlier releases,
// so previously exported detections stay byte-identical; IPv6
// addresses avalanche both 64-bit halves so adjacent prefixes spread.
// ok is false only for addresses that cannot identify any subscriber
// line (the exporter's template omitted or mis-sized the
// source-address field), which callers must skip rather than observe;
// v6 reports the address family for the per-family record counters.
//
// haystack:hotpath — runs once per flow record.
func subscriberKey(a netip.Addr) (id detect.SubID, v6, ok bool) {
	a = a.Unmap()
	if a.Is4() {
		b := a.As4()
		x := uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
		x ^= 0x9e3779b97f4a7c15
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		return detect.SubID(x), false, true
	}
	if !a.Is6() {
		return 0, false, false
	}
	b := a.As16()
	x := binary.BigEndian.Uint64(b[0:8])*0x9e3779b97f4a7c15 ^ binary.BigEndian.Uint64(b[8:16])
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return detect.SubID(x), true, true
}

// observeBatch stages one decoded record batch as pipeline
// observations in f.obs (reused across calls — steady state is
// append-into-capacity) and hands the whole batch to the producer
// under a single shard-map lock acquisition. Records whose
// subscriber-side address is unusable are skipped and counted.
//
// haystack:hotpath — runs once per decoded message, looping per record.
func (f *Feed) observeBatch(recs []flow.Record) {
	var v4, v6 uint64
	f.obs = f.obs[:0]
	for i := range recs {
		r := &recs[i]
		key, is6, ok := subscriberKey(r.Key.Src)
		if !ok {
			f.d.skipped.Add(1)
			continue
		}
		f.obs = append(f.obs, pipeline.Obs{
			Sub:  key,
			Hour: r.Hour,
			IP:   r.Key.Dst,
			Port: r.Key.DstPort,
			Pkts: r.Packets,
		})
		if is6 {
			v6++
		} else {
			v4++
		}
	}
	f.prod.ObserveBatch(f.obs)
	if v4 > 0 {
		f.d.recordsV4.Add(v4)
	}
	if v6 > 0 {
		f.d.recordsV6.Add(v6)
	}
	if n := v4 + v6; n > 0 {
		f.records.Add(n)
	}
}

// FeedNetFlow parses one NetFlow v9 message and feeds its records to
// the detection pipeline. The flow source is treated as the subscriber
// side.
func (f *Feed) FeedNetFlow(msg []byte) error {
	f.arena.Reset()
	return f.FeedNetFlowBatch(msg, &f.arena)
}

// FeedIPFIX parses one IPFIX message and feeds its records.
func (f *Feed) FeedIPFIX(msg []byte) error {
	f.arena.Reset()
	return f.FeedIPFIXBatch(msg, &f.arena)
}

// FeedNetFlowBatch parses one NetFlow v9 message into the caller's
// arena and feeds the decoded batch to the pipeline. The arena must
// arrive Reset; its backing storage is reused across messages, so the
// whole decode-to-dispatch path runs without steady-state allocation.
// Feed satisfies collector.ArenaFeed through this pair, which is how
// the socket layer's per-lane arenas reach the decoders.
func (f *Feed) FeedNetFlowBatch(msg []byte, arena *flow.Batch) error {
	err := f.nf.FeedInto(msg, arena)
	f.observeBatch(arena.Records()) // records decoded before a mid-message error still count
	return err
}

// FeedIPFIXBatch parses one IPFIX message into the caller's arena and
// feeds the decoded batch; see FeedNetFlowBatch.
func (f *Feed) FeedIPFIXBatch(msg []byte, arena *flow.Batch) error {
	err := f.ix.FeedInto(msg, arena)
	f.observeBatch(arena.Records())
	return err
}

// defaultFeed lazily creates the feed behind the Detector-level
// convenience methods.
func (d *Detector) defaultFeed() *Feed {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.def == nil {
		d.def = d.NewFeed()
	}
	return d.def
}

// FeedNetFlow parses one NetFlow v9 message on the detector's implicit
// feed. For concurrent ingestion use NewFeed handles instead.
func (d *Detector) FeedNetFlow(msg []byte) error { return d.defaultFeed().FeedNetFlow(msg) }

// FeedIPFIX parses one IPFIX message on the detector's implicit feed.
func (d *Detector) FeedIPFIX(msg []byte) error { return d.defaultFeed().FeedIPFIX(msg) }

// SkippedRecords returns how many decoded records were skipped across
// all feeds because their subscriber-side address was invalid (e.g.
// the exporter's template omitted or mis-sized the source address
// field). IPv4 and IPv6 subscribers are both hashed and observed, per
// §2.1's "anonymize all user IPs". The counter survives Reset and
// Rotate: it describes transport health, not window state.
func (d *Detector) SkippedRecords() uint64 { return d.skipped.Load() }

// Detections returns every (subscriber, rule) detection so far, sorted
// for determinism. It synchronizes the pipeline: all observations fed
// before the call (on any quiescent feed) are reflected.
func (d *Detector) Detections() []Detection {
	dict := d.pipe.Dictionary()
	var out []Detection
	d.pipe.EachDetected(func(sub detect.SubID, rule int, first simtime.Hour) {
		out = append(out, Detection{
			Subscriber: uint64(sub),
			Rule:       dict.Rules[rule].Name,
			Level:      dict.Rules[rule].Level.String(),
			First:      first.Time(),
		})
	})
	sortDetections(out)
	return out
}

// sortDetections orders by subscriber then rule name — the canonical
// presentation order shared by Detections and WindowResult.
func sortDetections(list []Detection) {
	sort.Slice(list, func(i, j int) bool {
		if list[i].Subscriber != list[j].Subscriber {
			return list[i].Subscriber < list[j].Subscriber
		}
		return list[i].Rule < list[j].Rule
	})
}

// Shards returns the number of engine shards the detector runs on.
func (d *Detector) Shards() int { return d.pipe.Shards() }

// Reset clears detection state and starts the next aggregation window
// — Rotate, discarding the closing window's result. Feeds and their
// template caches survive, as they would across windows in a
// deployment.
func (d *Detector) Reset() {
	d.rotateMu.Lock()
	defer d.rotateMu.Unlock()
	d.pipe.Reset()
	d.cutBaselineLocked(time.Now())
}

// Close flushes all feeds — including the implicit feed behind the
// Detector-level FeedNetFlow/FeedIPFIX, so its buffered observations
// always reach the pipeline — stops the shard workers, and closes
// every Subscribe channel. Detections remain readable after Close;
// feeding afterwards panics.
func (d *Detector) Close() {
	d.mu.Lock()
	def := d.def
	d.mu.Unlock()
	if def != nil {
		def.Close()
	}
	d.pipe.Close()
	d.closeEvents()
}

// ListenConfig configures a listening deployment: the UDP socket
// layer (the embedded collector.Config; see it for field semantics
// and defaults) plus aggregation-window rotation. A zero MaxFeeds is
// defaulted to the detector's shard count — more feeds than shards
// cannot add engine parallelism.
type ListenConfig struct {
	collector.Config

	// Window, when Every > 0 or OnRotate is set, turns the deployment
	// into the paper's windowed, continuously reporting detector: the
	// server rotates the detector every Every (plus a final, partial
	// window when it shuts down) and hands each WindowResult to
	// OnRotate. With OnRotate set but Every zero, the whole run is one
	// window, rotated and delivered at Close.
	Window WindowConfig

	// Log, when Log.Dir is set, gives the deployment a durable event
	// log (internal/eventlog): before the sockets bind, the detector
	// replays the log to resume the interrupted window — sequence
	// number and fired set — and from then on a dedicated subscriber
	// appends every DetectionEvent plus a marker per rotated window.
	// See log.go and DESIGN.md "Durability & replay".
	Log EventLogConfig
}

// Server is one running listening deployment: the collector socket
// layer plus, when configured, the aggregation-window rotator. The
// embedded collector.Server surfaces (Addrs, Stats, ServeMetrics,
// Sync) are promoted; use this type's Close/Serve so the rotator
// stops and the final window is delivered.
type Server struct {
	*collector.Server
	det    *Detector
	window WindowConfig

	stop    chan struct{} // stops the periodic rotator
	rotDone chan struct{}
	// tuneStop/tuneDone bound the adaptive batch-size tuner, which
	// follows the collector's smoothed ingest rate.
	tuneStop chan struct{}
	tuneDone chan struct{}
	stopOnce sync.Once
	// cutMu serializes window cuts (periodic, RotateNow, final) so
	// exports and log markers are delivered in sequence order.
	cutMu sync.Mutex

	// Event-log wiring (log.go). All nil/zero when ListenConfig.Log is
	// unset.
	log        *eventlog.Log
	tail       *LogTail
	replay     ReplayStats
	logCancel  func()        // cancels the writer's subscription
	logDone    chan struct{} // haystack:unbounded close-only writer-exit signal
	logEvents  atomic.Uint64 // events appended by the writer
	logErrs    atomic.Uint64 // failed appends (events and markers)
	logClosErr error         // the log's Close error, folded into Close's return
}

// Listen binds the configured sockets — UDP datagram listeners and
// TCP stream listeners (RFC 7011 IPFIX framing) alike — and starts
// ingesting NetFlow v9 / IPFIX into the detection pipeline: the
// deployable collector of the paper's §6 vantage points. Each
// exporter source the adaptive fan-in opens gets a NewFeed handle;
// sources are stickily assigned to feeds so template caches,
// sequence tracking, and per-subscriber ordering are preserved, and
// a TCP source's feed lives exactly as long as its connection (see
// DESIGN.md for the layer diagram and docs/OPERATIONS.md for running
// it).
//
// The returned server reports transport metrics (collector.Stats),
// drives the configured window rotation, and stops with Close; the
// detector itself stays open for Detections, Subscribe, and further
// feeds.
func (d *Detector) Listen(cfg ListenConfig) (*Server, error) {
	if cfg.MaxFeeds == 0 {
		cfg.MaxFeeds = d.Shards()
	}
	s := &Server{det: d, window: cfg.Window}
	if cfg.Log.Dir != "" {
		// Replay, then subscribe the writer, and only then bind the
		// sockets: state is rebuilt before any new observation arrives,
		// and no event can fire into a pre-subscription gap.
		if err := s.openLog(cfg.Log); err != nil {
			return nil, err
		}
	}
	inner, err := collector.Listen(cfg.Config, func() collector.Feed { return d.NewFeed() })
	if err != nil {
		s.teardownLog()
		return nil, err
	}
	s.Server = inner
	if cfg.Window.Every > 0 {
		s.stop = make(chan struct{})    // haystack:unbounded close-only shutdown signal for the rotator
		s.rotDone = make(chan struct{}) // haystack:unbounded close-only rotator-exit acknowledgement
		go s.rotator()
	}
	tick := cfg.Tick
	if tick <= 0 {
		tick = time.Second
	}
	s.tuneStop = make(chan struct{}) // haystack:unbounded close-only shutdown signal for the tuner
	s.tuneDone = make(chan struct{}) // haystack:unbounded close-only tuner-exit acknowledgement
	go s.batchTuner(tick)
	return s, nil
}

// batchTuner retunes the pipeline's dispatch threshold to the fan-in
// controller's smoothed ingest rate, once per controller tick: higher
// sustained rates earn larger batches (fewer handoffs per record),
// while a quiet deployment keeps batches small so observations reach
// the shards promptly. See pipeline.AdaptiveBatchSize for the policy.
func (s *Server) batchTuner(tick time.Duration) {
	defer close(s.tuneDone)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.tuneStop:
			return
		case <-t.C:
			s.det.pipe.SetBatchSize(pipeline.AdaptiveBatchSize(s.Server.Stats().RateEWMA))
		}
	}
}

// rotator cuts a window every cfg.Window.Every until Close.
func (s *Server) rotator() {
	defer close(s.rotDone)
	t := time.NewTicker(s.window.Every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.rotateAndDeliver()
		}
	}
}

// rotateAndDeliver cuts one window and delivers it — OnRotate first,
// then the log's window marker, so a marker in the log means the
// window reached its consumers. cutMu keeps concurrent cut sources
// (the periodic rotator, RotateNow, the final cut in Close) from
// interleaving their deliveries out of sequence order.
func (s *Server) rotateAndDeliver() WindowResult {
	s.cutMu.Lock()
	defer s.cutMu.Unlock()
	res := s.det.Rotate()
	if s.window.OnRotate != nil {
		s.window.OnRotate(res)
	}
	s.appendMarker(&res)
	return res
}

// RotateNow cuts the current aggregation window immediately —
// delivering it to OnRotate, the export directory, and the event log
// exactly as a periodic rotation would — and returns it. The CLI
// drives it from SIGHUP; tests use it for deterministic window
// boundaries.
func (s *Server) RotateNow() WindowResult { return s.rotateAndDeliver() }

// Close stops the sockets first — draining every queued datagram
// through the feeds, so the detector is quiescent — then stops the
// window rotator and rotates one final time, delivering the partial
// tail window to OnRotate: across a windowed run every detection
// lands in exactly one WindowResult. Safe to call multiple times;
// the final window is delivered once.
func (s *Server) Close() error {
	err := s.Server.Close()
	s.stopOnce.Do(func() {
		if s.stop != nil {
			close(s.stop)
			<-s.rotDone
		}
		if s.tuneStop != nil {
			close(s.tuneStop)
			<-s.tuneDone
		}
		if s.window.Every > 0 || s.window.OnRotate != nil || s.log != nil {
			s.rotateAndDeliver()
		}
		s.finishLog()
	})
	if err == nil {
		err = s.logClosErr
	}
	return err
}

// Kill tears the server down without committing the in-progress
// window: sockets drain, the rotator stops, but there is no final
// Rotate — no export, no OnRotate call, no window marker. From the
// event log's perspective this is exactly what SIGKILL leaves behind
// (events of the open window with no closing marker), which is what
// crash-replay tests simulate with it. The detector itself stays
// open; callers own its Close.
func (s *Server) Kill() error {
	err := s.Server.Close()
	s.stopOnce.Do(func() {
		if s.stop != nil {
			close(s.stop)
			<-s.rotDone
		}
		if s.tuneStop != nil {
			close(s.tuneStop)
			<-s.tuneDone
		}
		s.finishLog()
	})
	if err == nil {
		err = s.logClosErr
	}
	return err
}

// Serve blocks until ctx is done, then shuts the server down
// gracefully via Close (rotating and delivering the final window).
func (s *Server) Serve(ctx context.Context) error {
	<-ctx.Done()
	return s.Close()
}

// ListenAndDetect is Listen for the common lifecycle: it serves until
// ctx is cancelled, then drains the sockets' in-flight datagrams,
// closes the feeds, and delivers the final window (when windowing is
// configured), leaving the detector quiescent for exact Detections
// reads.
func (d *Detector) ListenAndDetect(ctx context.Context, cfg ListenConfig) error {
	srv, err := d.Listen(cfg)
	if err != nil {
		return err
	}
	return srv.Serve(ctx)
}

// DetectorStats is the detector-level slice of the metrics surface;
// the per-feed transport counters live in collector.Stats. All
// counters are cumulative across the detector's lifetime — window
// deltas are what Rotate reports in WindowResult.
//
// haystack:metrics-struct — every exported field must be filled by a
// haystack:metrics-export function (enforced by haystacklint).
type DetectorStats struct {
	// RecordsIPv4 and RecordsIPv6 count decoded records delivered to
	// the pipeline, by subscriber address family (both are hashed and
	// observed, per §2.1).
	RecordsIPv4 uint64 `json:"records_ipv4"`
	RecordsIPv6 uint64 `json:"records_ipv6"`
	// SkippedRecords counts decoded records dropped for lack of any
	// usable subscriber address, across all feeds.
	SkippedRecords uint64 `json:"skipped_records"`
	// Shards is the engine shard count.
	Shards int `json:"shards"`
	// OpenFeeds is the number of live feed handles (pipeline
	// producers).
	OpenFeeds int `json:"open_feeds"`
	// InflightBatches is the pipeline-side queue depth: observation
	// batches dispatched to shard workers but not yet applied.
	InflightBatches int `json:"inflight_batches"`
	// BatchSize is the pipeline's current dispatch threshold
	// (observations per shard batch). Under Listen it tracks the
	// collector's smoothed ingest rate via pipeline.AdaptiveBatchSize.
	BatchSize int `json:"batch_size"`
	// Windows is the number of completed aggregation windows
	// (Rotate/Reset cuts); the current window's sequence number.
	Windows uint64 `json:"windows"`
	// EventSubscribers is the number of live Subscribe channels.
	EventSubscribers int `json:"event_subscribers"`
	// EventsEmitted counts first-fire events emitted by the shard
	// workers since the first Subscribe installed the hook.
	EventsEmitted uint64 `json:"events_emitted"`
	// EventsDropped counts events lost because the detector's bounded
	// event queue was full — the broker could not keep up.
	EventsDropped uint64 `json:"events_dropped"`
	// SubscriberDrops counts per-subscriber deliveries skipped because
	// that subscriber's channel buffer was full (slow consumer); other
	// subscribers still receive the event.
	SubscriberDrops uint64 `json:"subscriber_drops"`
	// EventsDelivered counts events the broker has fanned out to the
	// subscriber channels. EventsEmitted − EventsDropped −
	// EventsDelivered is the broker's queue backlog.
	EventsDelivered uint64 `json:"events_delivered"`
	// EventQueues breaks the Subscribe fan-out down per subscriber:
	// one entry per live channel, sorted by name, with its queue depth
	// and drop count — how a lagging event-log writer or exporter
	// bridge is told apart from a healthy one.
	EventQueues []EventQueueStats `json:"event_queues,omitempty"`
}

// EventQueueStats is one Subscribe channel's health in DetectorStats.
//
// haystack:metrics-struct — every exported field must be filled by a
// haystack:metrics-export function (enforced by haystacklint).
type EventQueueStats struct {
	// Name is the SubscribeNamed name ("sub-<n>" when auto-assigned).
	Name string `json:"name"`
	// Buffered and Capacity are the channel's current depth and size.
	Buffered int `json:"buffered"`
	Capacity int `json:"capacity"`
	// Drops counts deliveries this subscriber alone missed because its
	// buffer was full.
	Drops uint64 `json:"drops"`
}

// Stats snapshots the detector's health counters. Safe to call while
// feeds are running.
//
// Stats is also haystack:deterministic — the EventQueues slice feeds
// /metrics JSON that tests diff, so the map iteration over
// subscribers is sorted by name before export.
//
// haystack:metrics-export
func (d *Detector) Stats() DetectorStats {
	d.evMu.Lock()
	subs := len(d.evSubs)
	queues := make([]EventQueueStats, 0, subs)
	for sub := range d.evSubs {
		queues = append(queues, EventQueueStats{
			Name:     sub.name,
			Buffered: len(sub.ch),
			Capacity: cap(sub.ch),
			Drops:    sub.drops.Load(),
		})
	}
	d.evMu.Unlock()
	sort.Slice(queues, func(i, j int) bool { return queues[i].Name < queues[j].Name })
	if len(queues) == 0 {
		queues = nil
	}
	return DetectorStats{
		RecordsIPv4:      d.recordsV4.Load(),
		RecordsIPv6:      d.recordsV6.Load(),
		SkippedRecords:   d.skipped.Load(),
		Shards:           d.pipe.Shards(),
		OpenFeeds:        d.pipe.Producers(),
		InflightBatches:  d.pipe.Inflight(),
		BatchSize:        d.pipe.BatchSize(),
		Windows:          d.pipe.Window(),
		EventSubscribers: subs,
		EventsEmitted:    d.eventsEmitted.Load(),
		EventsDropped:    d.eventsDropped.Load(),
		SubscriberDrops:  d.subscriberDrops.Load(),
		EventsDelivered:  d.eventsDelivered.Load(),
		EventQueues:      queues,
	}
}
