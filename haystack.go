// Package haystack reproduces "A Haystack Full of Needles: Scalable
// Detection of IoT Devices in the Wild" (Saidi et al., IMC 2020): a
// methodology for detecting consumer IoT devices at subscriber lines
// from passive, sparsely-sampled flow data (NetFlow/IPFIX) at an ISP or
// IXP, without any payload.
//
// The package exposes three layers:
//
//   - System: the assembled simulated world (testbeds, hosting, passive
//     DNS, certificate scans) with the §4 pipeline already run, plus
//     one driver per table/figure of the paper's evaluation;
//   - Detector: the streaming detection engine applied to NetFlow v9 or
//     IPFIX messages, the operational artifact an ISP would deploy;
//   - the experiment registry, used by the CLI and the benchmarks.
//
// Everything is deterministic in the seed. See DESIGN.md for the
// substitution map (what the paper measured vs what is simulated here)
// and EXPERIMENTS.md for paper-vs-measured results.
package haystack

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/collector"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/ipfix"
	"repro/internal/netflow"
	"repro/internal/pipeline"
	"repro/internal/simtime"
)

// Config sizes the simulation. The zero value is not usable; start from
// DefaultConfig.
type Config = experiments.Config

// Table is the uniform experiment result: printable rows plus the
// machine-readable statistics asserted in EXPERIMENTS.md.
type Table = experiments.Table

// DefaultConfig returns the test-scale configuration (1:500 of the
// paper's 15 M subscriber lines) for the given seed.
func DefaultConfig(seed uint64) Config { return experiments.DefaultConfig(seed) }

// PaperScaleConfig returns a 1:100 scale model (150k lines), the
// configuration used for the EXPERIMENTS.md headline numbers. Budget a
// few minutes of CPU for the full wild sweep.
func PaperScaleConfig(seed uint64) Config {
	cfg := experiments.DefaultConfig(seed)
	cfg.ISP.Lines = 150_000
	cfg.ISP.Scale = 100
	return cfg
}

// System is the assembled world with the detection dictionary compiled.
type System struct {
	lab *experiments.Lab
}

// New builds a system. The heavyweight simulations (ground truth, wild
// ISP, wild IXP) run lazily on first use.
func New(cfg Config) (*System, error) {
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return nil, err
	}
	return &System{lab: lab}, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Experiment identifies one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(*System) *Table
}

// Registry returns every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"T1", "Table 1: device inventory", func(s *System) *Table { return s.lab.Table1() }},
		{"S41", "§4.1 domain classification census", func(s *System) *Table { return s.lab.Sec41() }},
		{"S42", "§4.2 dedicated vs shared infrastructure", func(s *System) *Table { return s.lab.Sec42() }},
		{"S43", "§4.3 detection-rule census", func(s *System) *Table { return s.lab.Sec43() }},
		{"F5a", "Fig 5(a) service IPs per hour", func(s *System) *Table { return s.lab.Fig5a() }},
		{"F5b", "Fig 5(b) domains per hour", func(s *System) *Table { return s.lab.Fig5b() }},
		{"F5c", "Fig 5(c) cumulative IPs per port class", func(s *System) *Table { return s.lab.Fig5c() }},
		{"F5d", "Fig 5(d) devices per hour", func(s *System) *Table { return s.lab.Fig5d() }},
		{"F6", "Fig 6 heavy-hitter visibility", func(s *System) *Table { return s.lab.Fig6() }},
		{"F8", "Fig 8 packets/hour per domain", func(s *System) *Table { return s.lab.Fig8() }},
		{"F9", "Fig 9 ECDF of packets/hour", func(s *System) *Table { return s.lab.Fig9() }},
		{"F10", "Fig 10 time to detection per threshold", func(s *System) *Table { return s.lab.Fig10() }},
		{"F11", "Fig 11 wild-ISP subscribers per hour/day", func(s *System) *Table { return s.lab.Fig11() }},
		{"F12", "Fig 12 Amazon/Samsung drill-down", func(s *System) *Table { return s.lab.Fig12() }},
		{"F13", "Fig 13 cumulative subscribers and /24s", func(s *System) *Table { return s.lab.Fig13() }},
		{"F14", "Fig 14 other 32 device types per day", func(s *System) *Table { return s.lab.Fig14() }},
		{"F15", "Fig 15 wild-IXP unique IPs per day", func(s *System) *Table { return s.lab.Fig15() }},
		{"F16", "Fig 16 per-AS distribution at the IXP", func(s *System) *Table { return s.lab.Fig16() }},
		{"F17", "Fig 17 single Alexa device at both VPs", func(s *System) *Table { return s.lab.Fig17() }},
		{"F18", "Fig 18 actively-used Alexa lines per hour", func(s *System) *Table { return s.lab.Fig18() }},
		{"S5FP", "§5 false-positive crosscheck", func(s *System) *Table { return s.lab.Sec5FalsePositive() }},
	}
}

// Run executes one experiment by ID.
func (s *System) Run(id string) (*Table, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(s), nil
		}
	}
	return nil, fmt.Errorf("haystack: unknown experiment %q (see Registry)", id)
}

// RunAll executes every experiment in registry order.
func (s *System) RunAll() []*Table {
	var out []*Table
	for _, e := range Registry() {
		out = append(out, e.Run(s))
	}
	return out
}

// RuleSummary describes one compiled detection rule.
type RuleSummary struct {
	Name     string
	Level    string
	Parent   string
	Domains  []string
	Products []string
}

// Rules returns the compiled IoT dictionary's rules, sorted by name.
func (s *System) Rules() []RuleSummary {
	dict := s.lab.Dict
	out := make([]RuleSummary, 0, len(dict.Rules))
	for i := range dict.Rules {
		r := &dict.Rules[i]
		parent := ""
		if r.Parent >= 0 {
			parent = dict.Rules[r.Parent].Name
		}
		out = append(out, RuleSummary{
			Name:     r.Name,
			Level:    r.Level.String(),
			Parent:   parent,
			Domains:  append([]string(nil), r.Domains...),
			Products: append([]string(nil), r.Products...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Catalog returns the testbed inventory backing the system.
func (s *System) Catalog() *catalog.Catalog { return s.lab.W.Catalog }

// StudyStart returns the start of the simulated study window
// (Nov 15, 2019 — the paper's first measurement day).
func (s *System) StudyStart() time.Time { return s.lab.W.Window.Start.Time() }

// ServiceIPs returns the addresses a domain resolves to on the first
// study day — the view a device opening a connection would get. It
// returns nil for unhosted domains.
func (s *System) ServiceIPs(domain string) []netip.Addr {
	return s.lab.W.ResolverOn(s.lab.W.Window.Days()[0]).Resolve(domain)
}

// Detection is one (subscriber, rule) detection event.
type Detection struct {
	// Subscriber is the opaque anonymized subscriber key (the hash of
	// the subscriber-side address for wire-fed detectors).
	Subscriber uint64
	Rule       string
	Level      string
	// First is the start of the hour bin in which the rule fired.
	First time.Time
}

// Detector applies the compiled dictionary to NetFlow v9 / IPFIX
// messages — the operational deployment of the methodology. Detection
// runs on a sharded pipeline (see internal/pipeline): decoded records
// are partitioned by anonymized subscriber key across worker-owned
// engines, so results are independent of the shard count.
//
// For a live deployment, Listen / ListenAndDetect bind UDP collector
// sockets and drive exporter datagrams through the full stack:
// sockets → feeds → sharded engines (the three layers DESIGN.md
// diagrams), with adaptive feed fan-in and per-feed transport metrics.
//
// # Concurrency
//
// Wire messages enter through Feed handles (NewFeed). Each Feed owns
// its own wire-format decoders and pipeline producer and must be
// driven from a single goroutine, but any number of Feeds may run
// concurrently — one per collector socket in a deployment. Because
// detection state is keyed by subscriber, feeds should partition the
// subscriber space (as distinct exporters naturally do): a subscriber
// whose records interleave across feeds may see its multi-hour
// first-detection times vary with scheduling.
//
// The zero-setup methods FeedNetFlow/FeedIPFIX drive one implicit
// Feed and are therefore not safe to call concurrently with each
// other; use NewFeed handles for concurrent ingestion. Reading
// (Detections) while feeds are still running is safe but approximate
// — observations in flight may or may not be included, and under
// sustained ingest saturation the read blocks until the pipeline sees
// a momentary lull; quiesce or Close the feeds first for exact,
// prompt results. Reset requires quiescent feeds.
type Detector struct {
	pipe    *pipeline.Pipeline
	skipped atomic.Uint64

	mu  sync.Mutex
	def *Feed // backs the Detector-level feed methods
}

// NewDetector returns a detector at detection threshold d (the paper's
// conservative default is 0.4), sharded per the system configuration.
// Call Close when done to stop the shard workers.
func (s *System) NewDetector(d float64) *Detector {
	return s.NewShardedDetector(d, s.lab.Cfg.Shards)
}

// NewShardedDetector returns a detector at detection threshold d with
// an explicit engine-shard count (outputs are shard-invariant).
func (s *System) NewShardedDetector(d float64, shards int) *Detector {
	return &Detector{pipe: pipeline.New(s.lab.Dict, d, shards)}
}

// Feed is one wire-format ingestion handle: a NetFlow v9 and IPFIX
// decoder pair bound to its own pipeline producer. Each Feed must be
// driven from a single goroutine; distinct Feeds may run concurrently.
// Feed satisfies collector.Feed, so the UDP socket layer (Listen,
// ListenAndDetect) drives these handles directly.
type Feed struct {
	d       *Detector
	prod    *pipeline.Producer
	nf      *netflow.Collector
	ix      *ipfix.Collector
	records atomic.Uint64
}

// NewFeed registers a new ingestion handle, one per collector
// goroutine.
func (d *Detector) NewFeed() *Feed {
	return &Feed{
		d:    d,
		prod: d.pipe.NewProducer(),
		nf:   netflow.NewCollector(),
		ix:   ipfix.NewCollector(),
	}
}

// Close flushes the feed's buffered observations and releases its
// producer. The detector stays readable; closing twice is a no-op.
func (f *Feed) Close() { f.prod.Close() }

// FeedStats are transport-health counters for one feed: records
// delivered to the pipeline, untemplated data sets dropped, and
// exporter sequence gaps. The type is shared with the socket layer
// (internal/collector), which snapshots it per feed for metrics.
type FeedStats = collector.FeedStats

// Stats returns the feed's transport-health counters, summed over its
// NetFlow and IPFIX decoders. All counters are atomics, so Stats is
// safe to call while another goroutine drives the feed — the reading
// is approximate under load, never racy.
func (f *Feed) Stats() FeedStats {
	return FeedStats{
		Records: f.records.Load(),
		Dropped: f.nf.Dropped.Load() + f.ix.Dropped.Load(),
		Gaps:    f.nf.Gaps.Load() + f.ix.Gaps.Load(),
	}
}

// subscriberKey anonymizes the subscriber-side address by hashing, as
// §2.1 requires ("anonymize by hashing all user IPs"). The boolean is
// false for addresses that cannot identify an IPv4 subscriber line —
// invalid (the exporter's template omitted the source-address field)
// or not IPv4 — which callers must skip rather than observe.
func subscriberKey(a netip.Addr) (detect.SubID, bool) {
	a = a.Unmap()
	if !a.Is4() {
		return 0, false
	}
	b := a.As4()
	x := uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	x ^= 0x9e3779b97f4a7c15
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return detect.SubID(x), true
}

// observe feeds decoded records to the pipeline, skipping (and
// counting) records whose subscriber-side address is unusable.
func (f *Feed) observe(recs []flow.Record) {
	delivered := uint64(0)
	for i := range recs {
		r := &recs[i]
		key, ok := subscriberKey(r.Key.Src)
		if !ok {
			f.d.skipped.Add(1)
			continue
		}
		f.prod.Observe(key, r.Hour, r.Key.Dst, r.Key.DstPort, r.Packets)
		delivered++
	}
	if delivered > 0 {
		f.records.Add(delivered)
	}
}

// FeedNetFlow parses one NetFlow v9 message and feeds its records to
// the detection pipeline. The flow source is treated as the subscriber
// side.
func (f *Feed) FeedNetFlow(msg []byte) error {
	recs, err := f.nf.Feed(msg)
	f.observe(recs) // records decoded before a mid-message error still count
	return err
}

// FeedIPFIX parses one IPFIX message and feeds its records.
func (f *Feed) FeedIPFIX(msg []byte) error {
	recs, err := f.ix.Feed(msg)
	f.observe(recs)
	return err
}

// defaultFeed lazily creates the feed behind the Detector-level
// convenience methods.
func (d *Detector) defaultFeed() *Feed {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.def == nil {
		d.def = d.NewFeed()
	}
	return d.def
}

// FeedNetFlow parses one NetFlow v9 message on the detector's implicit
// feed. For concurrent ingestion use NewFeed handles instead.
func (d *Detector) FeedNetFlow(msg []byte) error { return d.defaultFeed().FeedNetFlow(msg) }

// FeedIPFIX parses one IPFIX message on the detector's implicit feed.
func (d *Detector) FeedIPFIX(msg []byte) error { return d.defaultFeed().FeedIPFIX(msg) }

// SkippedRecords returns how many decoded records were skipped across
// all feeds because their subscriber-side address was invalid or not
// IPv4 (e.g. the exporter's template omitted or mis-sized the source
// address field). The counter survives Reset: it describes transport
// health, not window state.
func (d *Detector) SkippedRecords() uint64 { return d.skipped.Load() }

// Detections returns every (subscriber, rule) detection so far, sorted
// for determinism. It synchronizes the pipeline: all observations fed
// before the call (on any quiescent feed) are reflected.
func (d *Detector) Detections() []Detection {
	dict := d.pipe.Dictionary()
	var out []Detection
	d.pipe.EachDetected(func(sub detect.SubID, rule int, first simtime.Hour) {
		out = append(out, Detection{
			Subscriber: uint64(sub),
			Rule:       dict.Rules[rule].Name,
			Level:      dict.Rules[rule].Level.String(),
			First:      first.Time(),
		})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subscriber != out[j].Subscriber {
			return out[i].Subscriber < out[j].Subscriber
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Shards returns the number of engine shards the detector runs on.
func (d *Detector) Shards() int { return d.pipe.Shards() }

// Reset clears detection state (start of a new aggregation window).
// Feeds and their template caches survive, as they would across
// windows in a deployment.
func (d *Detector) Reset() { d.pipe.Reset() }

// Close flushes all feeds and stops the shard workers. Detections
// remain readable after Close; feeding afterwards panics.
func (d *Detector) Close() { d.pipe.Close() }

// ListenConfig configures the detector's UDP socket layer; see
// collector.Config for the field semantics and defaults. A zero
// MaxFeeds is defaulted to the detector's shard count — more feeds
// than shards cannot add engine parallelism.
type ListenConfig = collector.Config

// Listen binds the configured UDP sockets and starts ingesting
// NetFlow v9 / IPFIX datagrams into the detection pipeline — the
// deployable collector of the paper's §6 vantage points. Each feed
// the adaptive fan-in opens is a NewFeed handle; exporter sources are
// stickily assigned to feeds so template caches, sequence tracking,
// and per-subscriber ordering are preserved (see DESIGN.md for the
// layer diagram and docs/OPERATIONS.md for running it).
//
// The returned server reports transport metrics (collector.Stats) and
// stops with Close; the detector itself stays open for Detections and
// further feeds.
func (d *Detector) Listen(cfg ListenConfig) (*collector.Server, error) {
	if cfg.MaxFeeds == 0 {
		cfg.MaxFeeds = d.Shards()
	}
	return collector.Listen(cfg, func() collector.Feed { return d.NewFeed() })
}

// ListenAndDetect is Listen for the common lifecycle: it serves until
// ctx is cancelled, then drains the sockets' in-flight datagrams and
// closes the feeds, leaving the detector quiescent for exact
// Detections reads.
func (d *Detector) ListenAndDetect(ctx context.Context, cfg ListenConfig) error {
	srv, err := d.Listen(cfg)
	if err != nil {
		return err
	}
	return srv.Serve(ctx)
}

// DetectorStats is the detector-level slice of the metrics surface;
// the per-feed transport counters live in collector.Stats.
type DetectorStats struct {
	// SkippedRecords counts decoded records dropped for lack of a
	// usable IPv4 subscriber address, across all feeds.
	SkippedRecords uint64
	// Shards is the engine shard count.
	Shards int
	// OpenFeeds is the number of live feed handles (pipeline
	// producers).
	OpenFeeds int
	// InflightBatches is the pipeline-side queue depth: observation
	// batches dispatched to shard workers but not yet applied.
	InflightBatches int
}

// Stats snapshots the detector's health counters. Safe to call while
// feeds are running.
func (d *Detector) Stats() DetectorStats {
	return DetectorStats{
		SkippedRecords:  d.skipped.Load(),
		Shards:          d.pipe.Shards(),
		OpenFeeds:       d.pipe.Producers(),
		InflightBatches: d.pipe.Inflight(),
	}
}
