package haystack

// Export writers for WindowResult: the §2.1-compliant anonymized
// schema (subscribers appear only as their 64-bit hash, rendered as
// 16 hex digits) in JSON Lines and CSV, plus ExportDir, which writes
// one file per rotated window — the shape `haystack listen
// -window 1h -export-dir out/` produces.

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"syscall"
	"time"
)

// SubscriberHex renders an anonymized subscriber key in the §2.1
// export schema's canonical form, 16 lowercase hex digits — the one
// definition shared by the JSONL/CSV writers, the Detection and
// DetectionEvent JSON forms, and the CLI event printer.
func SubscriberHex(sub uint64) string { return fmt.Sprintf("%016x", sub) }

// exportRow is one detection in the anonymized export schema, shared
// by the JSONL and CSV writers (CSV emits the fields in declaration
// order).
type exportRow struct {
	Window      uint64 `json:"window"`
	WindowStart string `json:"window_start"`
	WindowEnd   string `json:"window_end"`
	Subscriber  string `json:"subscriber"`
	Rule        string `json:"rule"`
	Level       string `json:"level"`
	First       string `json:"first"`
}

// exportHeader is the CSV header, matching exportRow.
var exportHeader = []string{"window", "window_start", "window_end", "subscriber", "rule", "level", "first"}

// rows streams the window's detections in their stored order —
// deterministic because Rotate sorts them by subscriber then rule.
//
// haystack:deterministic
func (res *WindowResult) rows(fn func(exportRow) error) error {
	start := res.Start.UTC().Format(time.RFC3339)
	end := res.End.UTC().Format(time.RFC3339)
	for i := range res.Detections {
		d := &res.Detections[i]
		if err := fn(exportRow{
			Window:      res.Seq,
			WindowStart: start,
			WindowEnd:   end,
			Subscriber:  SubscriberHex(d.Subscriber),
			Rule:        d.Rule,
			Level:       d.Level,
			First:       d.First.UTC().Format(time.RFC3339),
		}); err != nil {
			return err
		}
	}
	return nil
}

// exportCRCTable is the CRC32C (Castagnoli) table for export
// trailers — the same polynomial internal/eventlog frames records
// with, so one checksum discipline covers both durability surfaces.
var exportCRCTable = crc32.MakeTable(crc32.Castagnoli)

// exportTrailer is the final line of a JSONL export: row count plus
// the CRC32C of every byte that precedes the trailer line. Backfill
// readers use it (via VerifyWindowJSONL) to distinguish a complete
// export from one truncated by a crash or a partial copy — the JSONL
// body alone cannot tell, since any prefix of complete lines parses
// cleanly. The window sequence is repeated in the trailer so a
// reader can sanity-check a file against its name without parsing
// any rows.
type exportTrailer struct {
	Trailer uint64 `json:"haystack_trailer"` // schema version, currently 1
	Window  uint64 `json:"window"`
	Rows    uint64 `json:"rows"`
	CRC32C  string `json:"crc32c"` // 8 lowercase hex digits
}

// exportTrailerVersion is the trailer schema version written today.
const exportTrailerVersion = 1

// crcWriter tees writes into an io.Writer while folding them into a
// running CRC32C.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, exportCRCTable, p[:n])
	c.n += int64(n)
	return n, err
}

// WriteWindowJSONL writes one JSON object per detection of the
// window, newline-delimited, then a trailer line carrying the row
// count and the CRC32C of all preceding bytes (see exportTrailer).
// An empty window writes only the trailer.
//
// haystack:deterministic — export bytes are compared across runs.
func WriteWindowJSONL(w io.Writer, res *WindowResult) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	enc := json.NewEncoder(cw)
	rows := uint64(0)
	err := res.rows(func(r exportRow) error {
		rows++
		return enc.Encode(r)
	})
	if err != nil {
		return err
	}
	// The trailer is outside its own checksum; field order is fixed by
	// exportTrailer's declaration order (encoding/json preserves it).
	if err := json.NewEncoder(bw).Encode(exportTrailer{
		Trailer: exportTrailerVersion,
		Window:  res.Seq,
		Rows:    rows,
		CRC32C:  fmt.Sprintf("%08x", cw.crc),
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// ErrExportTruncated reports a JSONL export whose trailer is missing
// or does not match its body — the file was truncated, partially
// copied, or corrupted after the write.
var ErrExportTruncated = errors.New("haystack: export truncated or corrupt")

// VerifyWindowJSONL checks a JSONL export against its trailer line
// and returns the verified row count. Any mismatch — no trailer, body
// bytes whose CRC32C differs, a row count that disagrees with the
// lines actually present, or a final line cut mid-write — returns an
// error wrapping ErrExportTruncated. This is the backfill reader's
// first step before trusting window files from an export directory.
func VerifyWindowJSONL(r io.Reader) (rows uint64, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return 0, fmt.Errorf("%w: no trailer line", ErrExportTruncated)
	}
	// The trailer is the last newline-terminated line; everything
	// before it is the checksummed body.
	body := data[:len(data)-1]
	var line []byte
	if i := bytes.LastIndexByte(body, '\n'); i >= 0 {
		line = body[i+1:]
		body = data[:i+1]
	} else {
		line = body
		body = nil
	}
	var tr exportTrailer
	if err := json.Unmarshal(line, &tr); err != nil || tr.Trailer != exportTrailerVersion {
		return 0, fmt.Errorf("%w: last line is not a trailer", ErrExportTruncated)
	}
	if got := fmt.Sprintf("%08x", crc32.Checksum(body, exportCRCTable)); got != tr.CRC32C {
		return 0, fmt.Errorf("%w: body crc32c %s, trailer says %s", ErrExportTruncated, got, tr.CRC32C)
	}
	if got := uint64(bytes.Count(body, []byte{'\n'})); got != tr.Rows {
		return 0, fmt.Errorf("%w: %d rows present, trailer says %d", ErrExportTruncated, got, tr.Rows)
	}
	return tr.Rows, nil
}

// WriteWindowCSV writes the window's detections as CSV with a header
// row. An empty window writes only the header.
//
// haystack:deterministic — export bytes are compared across runs.
func WriteWindowCSV(w io.Writer, res *WindowResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(exportHeader); err != nil {
		return err
	}
	err := res.rows(func(r exportRow) error {
		return cw.Write([]string{
			strconv.FormatUint(r.Window, 10), r.WindowStart, r.WindowEnd,
			r.Subscriber, r.Rule, r.Level, r.First,
		})
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteWindowSummary writes a compact per-rule text summary of one
// window: a header line, then one "rule  level-count" line per
// detected rule in lexicographic rule order, drawn from the window's
// RuleCounts map. Intended for logs and operator terminals, but the
// bytes are still diffed across runs in tests, so ordering matters.
//
// haystack:deterministic — RuleCounts is a map; iteration must be
// sorted before anything reaches w.
func WriteWindowSummary(w io.Writer, res *WindowResult) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "window %d  %s → %s  subscribers %d  detected %d\n",
		res.Seq,
		res.Start.UTC().Format(time.RFC3339),
		res.End.UTC().Format(time.RFC3339),
		res.Subscribers,
		res.DetectedSubscribers)
	rules := make([]string, 0, len(res.RuleCounts))
	for rule := range res.RuleCounts {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	for _, rule := range rules {
		fmt.Fprintf(bw, "  %-22s %d\n", rule, res.RuleCounts[rule])
	}
	return bw.Flush()
}

// ExportDir writes one export file per rotated window into a
// directory: window-000000000000.jsonl, window-000000000001.jsonl, …
// Sequence numbers are zero-padded to 12 digits so lexicographic
// order is chronological order for any realistic deployment lifetime
// (10^12 hourly windows is ~10^8 years). Suitable as the body of a
// WindowConfig.OnRotate callback; see docs/OPERATIONS.md for the
// operator walkthrough.
type ExportDir struct {
	dir    string
	format string
}

// NewExportDir prepares dir (creating it if needed) for per-window
// exports in the given format, "jsonl", "csv", or "summary" (the
// WriteWindowSummary operator text). Window files written
// by earlier releases with narrower zero-padding are renamed to the
// current 12-digit form, so lexicographic order stays chronological
// across an upgrade — without the migration, the first post-upgrade
// window-000000000124.jsonl would sort *before* an old
// window-000123.jsonl.
func NewExportDir(dir, format string) (*ExportDir, error) {
	switch format {
	case "jsonl", "csv", "summary":
	default:
		return nil, fmt.Errorf("haystack: unknown export format %q (want jsonl, csv, or summary)", format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("haystack: export dir: %w", err)
	}
	if err := migrateExportNames(dir); err != nil {
		return nil, fmt.Errorf("haystack: export dir: %w", err)
	}
	return &ExportDir{dir: dir, format: format}, nil
}

// narrowExportName matches window files with fewer than 12 sequence
// digits — the pre-12-digit naming.
var narrowExportName = regexp.MustCompile(`^window-(\d{1,11})\.(jsonl|csv)$`)

// migrateExportNames widens old narrow-padded window file names in
// place; current-format names pass through untouched.
func migrateExportNames(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	renamed := false
	for _, e := range entries {
		m := narrowExportName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		seq, err := strconv.ParseUint(m[1], 10, 64) // ≤ 11 digits always fits
		if err != nil {
			continue
		}
		to := filepath.Join(dir, fmt.Sprintf("window-%012d.%s", seq, m[2]))
		if _, err := os.Stat(to); err == nil {
			// The wide name already exists (e.g. the sequence
			// restarted across an up/downgrade cycle): renaming would
			// silently clobber that window's data. Keep both files;
			// the stale narrow name is the lesser harm.
			continue
		}
		if err := os.Rename(filepath.Join(dir, e.Name()), to); err != nil {
			return err
		}
		renamed = true
	}
	if renamed {
		return syncDir(dir)
	}
	return nil
}

// Export writes the window to window-<seq>.<format> in the directory
// and returns the file's path. The write is atomic and durable
// (writeFileAtomic) for every format — a consumer tailing the
// directory never reads a half-written window, whichever writer
// produced it.
func (e *ExportDir) Export(res *WindowResult) (string, error) {
	path := filepath.Join(e.dir, fmt.Sprintf("window-%012d.%s", res.Seq, e.format))
	var write func(io.Writer, *WindowResult) error
	switch e.format {
	case "csv":
		write = WriteWindowCSV
	case "summary":
		write = WriteWindowSummary
	default:
		write = WriteWindowJSONL
	}
	if err := writeFileAtomic(path, func(w io.Writer) error { return write(w, res) }); err != nil {
		return "", err
	}
	return path, nil
}

// writeFileAtomic writes path via <path>.tmp → rename: the contents
// are fsynced before the rename and the directory after it, so the
// final name either does not exist or holds the complete bytes — a
// crash mid-write leaves at worst a stale .tmp, never a truncated
// export under its real name.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a
// crash. Filesystems that cannot sync a directory handle (some
// network and FUSE mounts) are tolerated — by the time this runs the
// rename has already landed atomically, so "the filesystem cannot
// give the extra durability" must not turn a completed export into a
// reported failure. Real I/O errors still surface.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) ||
		errors.Is(serr, syscall.EOPNOTSUPP) || errors.Is(serr, syscall.ENOTTY) {
		return nil
	}
	return serr
}
