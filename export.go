package haystack

// Export writers for WindowResult: the §2.1-compliant anonymized
// schema (subscribers appear only as their 64-bit hash, rendered as
// 16 hex digits) in JSON Lines and CSV, plus ExportDir, which writes
// one file per rotated window — the shape `haystack listen
// -window 1h -export-dir out/` produces.

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// SubscriberHex renders an anonymized subscriber key in the §2.1
// export schema's canonical form, 16 lowercase hex digits — the one
// definition shared by the JSONL/CSV writers, the Detection and
// DetectionEvent JSON forms, and the CLI event printer.
func SubscriberHex(sub uint64) string { return fmt.Sprintf("%016x", sub) }

// exportRow is one detection in the anonymized export schema, shared
// by the JSONL and CSV writers (CSV emits the fields in declaration
// order).
type exportRow struct {
	Window      uint64 `json:"window"`
	WindowStart string `json:"window_start"`
	WindowEnd   string `json:"window_end"`
	Subscriber  string `json:"subscriber"`
	Rule        string `json:"rule"`
	Level       string `json:"level"`
	First       string `json:"first"`
}

// exportHeader is the CSV header, matching exportRow.
var exportHeader = []string{"window", "window_start", "window_end", "subscriber", "rule", "level", "first"}

func (res *WindowResult) rows(fn func(exportRow) error) error {
	start := res.Start.UTC().Format(time.RFC3339)
	end := res.End.UTC().Format(time.RFC3339)
	for i := range res.Detections {
		d := &res.Detections[i]
		if err := fn(exportRow{
			Window:      res.Seq,
			WindowStart: start,
			WindowEnd:   end,
			Subscriber:  SubscriberHex(d.Subscriber),
			Rule:        d.Rule,
			Level:       d.Level,
			First:       d.First.UTC().Format(time.RFC3339),
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteWindowJSONL writes one JSON object per detection of the
// window, newline-delimited — the streaming-friendly export format.
// An empty window writes nothing.
func WriteWindowJSONL(w io.Writer, res *WindowResult) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := res.rows(func(r exportRow) error { return enc.Encode(r) }); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteWindowCSV writes the window's detections as CSV with a header
// row. An empty window writes only the header.
func WriteWindowCSV(w io.Writer, res *WindowResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(exportHeader); err != nil {
		return err
	}
	err := res.rows(func(r exportRow) error {
		return cw.Write([]string{
			strconv.FormatUint(r.Window, 10), r.WindowStart, r.WindowEnd,
			r.Subscriber, r.Rule, r.Level, r.First,
		})
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ExportDir writes one export file per rotated window into a
// directory: window-000000.jsonl, window-000001.jsonl, … Suitable as
// the body of a WindowConfig.OnRotate callback; see
// docs/OPERATIONS.md for the operator walkthrough.
type ExportDir struct {
	dir    string
	format string
}

// NewExportDir prepares dir (creating it if needed) for per-window
// exports in the given format, "jsonl" or "csv".
func NewExportDir(dir, format string) (*ExportDir, error) {
	switch format {
	case "jsonl", "csv":
	default:
		return nil, fmt.Errorf("haystack: unknown export format %q (want jsonl or csv)", format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("haystack: export dir: %w", err)
	}
	return &ExportDir{dir: dir, format: format}, nil
}

// Export writes the window to window-<seq>.<format> in the directory
// and returns the file's path. The write is atomic: the file appears
// complete or not at all, so a consumer tailing the directory never
// reads a half-written window.
func (e *ExportDir) Export(res *WindowResult) (string, error) {
	path := filepath.Join(e.dir, fmt.Sprintf("window-%06d.%s", res.Seq, e.format))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	if e.format == "csv" {
		err = WriteWindowCSV(f, res)
	} else {
		err = WriteWindowJSONL(f, res)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}
